//! Streaming observation of a simulation run.
//!
//! The engine used to record full per-net waveforms unconditionally —
//! glitch-count sweeps over thousands of stimuli paid waveform memory they
//! never read.  [`SimObserver`] inverts that: the engine *streams* what
//! happens (transitions emitted on nets, events cancelled at inputs, gates
//! evaluated through the delay model) and the observer decides what to keep.
//! [`CompiledCircuit::run_observed`] drives any observer;
//! [`CompiledCircuit::run_with`] is now a thin wrapper plugging in a
//! [`WaveformRecorder`] and packaging its trace as a
//! [`SimulationResult`](crate::SimulationResult).
//!
//! Shipped observers:
//!
//! * [`WaveformRecorder`] — today's behaviour: every transition of every
//!   net, as [`DigitalWaveform`]s,
//! * [`ActivityCounter`] — per-net transition counts and the run statistics,
//!   with **no** waveform allocation (the Table 1 quantities),
//! * [`VcdStreamer`] — VCD export without retaining ramp waveforms: the
//!   half-swing projection is folded incrementally and the document is
//!   written through [`halotis_waveform::vcd::StreamWriter`] at the end of
//!   the run,
//! * [`PowerAccumulator`] — switched-capacitance energy totals, computed
//!   online from the compiled net loads,
//! * `()` — the null observer, for pure-statistics runs,
//! * `(A, B)` — fan-out to two observers in one pass.
//!
//! # Example: Table 1 statistics without waveforms
//!
//! ```
//! use halotis_core::{LogicLevel, Time};
//! use halotis_netlist::{generators, technology};
//! use halotis_sim::{ActivityCounter, CompiledCircuit, SimulationConfig};
//! use halotis_waveform::Stimulus;
//!
//! let netlist = generators::c17();
//! let library = technology::cmos06();
//! let circuit = CompiledCircuit::compile(&netlist, &library)?;
//! let mut stimulus = Stimulus::new(library.default_input_slew());
//! for &input in netlist.primary_inputs() {
//!     let name = netlist.net(input).name();
//!     stimulus.set_initial(name, LogicLevel::Low);
//!     stimulus.drive(name, Time::from_ns(1.0), LogicLevel::High);
//! }
//!
//! let mut activity = ActivityCounter::new();
//! let mut state = circuit.new_state();
//! let stats = circuit.run_observed(&mut state, &stimulus, &SimulationConfig::ddm(), &mut activity)?;
//! assert_eq!(activity.total_transitions(), stats.output_transitions);
//! # Ok::<(), halotis_sim::SimulationError>(())
//! ```

use std::io::{self, Write};

use halotis_core::{Capacitance, GateId, LogicLevel, NetId, PinRef, Time, Voltage};
use halotis_delay::DelayOutcome;
use halotis_netlist::Netlist;
use halotis_waveform::vcd::StreamWriter;
use halotis_waveform::{DigitalWaveform, Trace, Transition};

use crate::compiled::CompiledCircuit;
use crate::event::Event;
use crate::stats::SimulationStats;

/// A streaming consumer of simulation activity.
///
/// All methods have empty default bodies: implement only what the analysis
/// needs.  The engine calls them in this order —
///
/// 1. [`begin`](SimObserver::begin), once, before any event is processed,
/// 2. [`on_transition`](SimObserver::on_transition) /
///    [`on_event_filtered`](SimObserver::on_event_filtered) /
///    [`on_gate_evaluated`](SimObserver::on_gate_evaluated), interleaved in
///    simulation order,
/// 3. [`finish`](SimObserver::finish), once, with the final statistics
///    (skipped when the run aborts with an error).
///
/// Observers are reusable unless documented otherwise: `begin` re-initialises
/// all internal state, so one observer instance can serve many runs (the
/// batch runner relies on this to reuse one observer per worker when the
/// caller chooses to).  [`VcdStreamer`] is the documented exception — it is
/// single-use, because a written document cannot be taken back.
pub trait SimObserver {
    /// The run is about to start.  `initial_levels` holds the settled level
    /// of every net, indexed by net id — the same levels a recorded waveform
    /// would start from.
    fn begin(&mut self, circuit: &CompiledCircuit<'_>, initial_levels: &[LogicLevel]) {
        let _ = (circuit, initial_levels);
    }

    /// A transition (linear ramp) was emitted on `net` — gate outputs *and*
    /// stimulus edges on primary inputs, exactly what waveform recording
    /// used to capture.
    fn on_transition(&mut self, net: NetId, transition: &Transition) {
        let _ = (net, transition);
    }

    /// A candidate event at `at` for input `pin` triggered the per-input
    /// cancellation rule (paper Fig. 4): the pending previous event was
    /// removed and the candidate discarded — the pulse never existed for
    /// this input.
    fn on_event_filtered(&mut self, pin: PinRef, at: Time) {
        let _ = (pin, at);
    }

    /// The delay model evaluated an output excitation of `gate` (the gate's
    /// output value changed and a timed transition was computed from
    /// `event`).
    fn on_gate_evaluated(&mut self, gate: GateId, event: &Event, outcome: &DelayOutcome) {
        let _ = (gate, event, outcome);
    }

    /// The run completed; `stats` are the same statistics the run returns.
    fn finish(&mut self, stats: &SimulationStats) {
        let _ = stats;
    }
}

/// The null observer: a pure-statistics run.
impl SimObserver for () {}

/// Fan-out: drives two observers in one pass (nest tuples for more).
impl<A: SimObserver, B: SimObserver> SimObserver for (A, B) {
    fn begin(&mut self, circuit: &CompiledCircuit<'_>, initial_levels: &[LogicLevel]) {
        self.0.begin(circuit, initial_levels);
        self.1.begin(circuit, initial_levels);
    }

    fn on_transition(&mut self, net: NetId, transition: &Transition) {
        self.0.on_transition(net, transition);
        self.1.on_transition(net, transition);
    }

    fn on_event_filtered(&mut self, pin: PinRef, at: Time) {
        self.0.on_event_filtered(pin, at);
        self.1.on_event_filtered(pin, at);
    }

    fn on_gate_evaluated(&mut self, gate: GateId, event: &Event, outcome: &DelayOutcome) {
        self.0.on_gate_evaluated(gate, event, outcome);
        self.1.on_gate_evaluated(gate, event, outcome);
    }

    fn finish(&mut self, stats: &SimulationStats) {
        self.0.finish(stats);
        self.1.finish(stats);
    }
}

/// Records every transition of every net — the engine's historical
/// behaviour, now one observer among others.
///
/// [`CompiledCircuit::run_with`] uses it internally and packages the trace
/// into a [`SimulationResult`](crate::SimulationResult); use it directly
/// with [`CompiledCircuit::run_observed`] to combine full waveforms with
/// other observers in a single pass.
#[derive(Clone, Debug, Default)]
pub struct WaveformRecorder {
    waveforms: Vec<DigitalWaveform>,
}

impl WaveformRecorder {
    /// An empty recorder; sized on [`begin`](SimObserver::begin).
    pub fn new() -> Self {
        Self::default()
    }

    /// The waveform recorded so far for `net`.
    pub fn waveform(&self, net: NetId) -> Option<&DigitalWaveform> {
        self.waveforms.get(net.index())
    }

    /// Drains the recording into a name-keyed trace, in the netlist's net
    /// declaration order.
    pub fn into_trace(mut self, netlist: &Netlist) -> Trace<DigitalWaveform> {
        let mut trace = Trace::new();
        for net in netlist.nets() {
            trace.insert(
                net.name(),
                std::mem::replace(
                    &mut self.waveforms[net.id().index()],
                    DigitalWaveform::new(LogicLevel::Unknown),
                ),
            );
        }
        trace
    }
}

impl SimObserver for WaveformRecorder {
    fn begin(&mut self, _circuit: &CompiledCircuit<'_>, initial_levels: &[LogicLevel]) {
        self.waveforms.clear();
        self.waveforms.extend(
            initial_levels
                .iter()
                .map(|&level| DigitalWaveform::new(level)),
        );
    }

    fn on_transition(&mut self, net: NetId, transition: &Transition) {
        self.waveforms[net.index()].push(*transition);
    }
}

/// Counts transitions per net without storing them — the switching-activity
/// quantities of the paper's Table 1 discussion, at O(nets) memory and zero
/// waveform allocation.
#[derive(Clone, Debug, Default)]
pub struct ActivityCounter {
    per_net: Vec<usize>,
    total: usize,
    stats: SimulationStats,
}

impl ActivityCounter {
    /// An empty counter; sized on [`begin`](SimObserver::begin).
    pub fn new() -> Self {
        Self::default()
    }

    /// Transitions counted on one net.
    pub fn transitions(&self, net: NetId) -> usize {
        self.per_net.get(net.index()).copied().unwrap_or(0)
    }

    /// Per-net transition counts, indexed by net id.
    pub fn per_net(&self) -> &[usize] {
        &self.per_net
    }

    /// Total transitions across all nets (equals the run's
    /// `output_transitions` statistic).
    pub fn total_transitions(&self) -> usize {
        self.total
    }

    /// The run statistics captured at [`finish`](SimObserver::finish).
    pub fn stats(&self) -> &SimulationStats {
        &self.stats
    }
}

impl SimObserver for ActivityCounter {
    fn begin(&mut self, _circuit: &CompiledCircuit<'_>, initial_levels: &[LogicLevel]) {
        self.per_net.clear();
        self.per_net.resize(initial_levels.len(), 0);
        self.total = 0;
        self.stats = SimulationStats::default();
    }

    fn on_transition(&mut self, net: NetId, _transition: &Transition) {
        self.per_net[net.index()] += 1;
        self.total += 1;
    }

    fn finish(&mut self, stats: &SimulationStats) {
        self.stats = *stats;
    }
}

/// Accumulates dynamic energy online: every transition contributes one full
/// `C_net · Vdd²` swing, using the net capacitances the
/// [`CompiledCircuit`] already holds.
///
/// Produces the same totals as
/// [`power::estimate_compiled`](crate::power::estimate_compiled) on a
/// recorded result, without recording anything.
#[derive(Clone, Debug, Default)]
pub struct PowerAccumulator {
    vdd: Voltage,
    net_loads: Vec<Capacitance>,
    counts: Vec<usize>,
}

impl PowerAccumulator {
    /// An empty accumulator; sized on [`begin`](SimObserver::begin).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total dynamic energy accumulated so far, in joules.
    pub fn total_joules(&self) -> f64 {
        let vdd_squared = self.vdd.as_volts() * self.vdd.as_volts();
        self.counts
            .iter()
            .zip(&self.net_loads)
            .map(|(&count, load)| load.as_farads() * vdd_squared * count as f64)
            .sum()
    }

    /// Total number of net transitions that contributed energy.
    pub fn total_transitions(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Packages the accumulated activity as a full
    /// [`PowerReport`](crate::power::PowerReport) (per-net breakdown,
    /// hotspots), identical to estimating from a recorded result.
    pub fn report(&self, netlist: &Netlist) -> crate::power::PowerReport {
        crate::power::report_from_counts(netlist, &self.net_loads, self.vdd, &self.counts)
    }
}

impl SimObserver for PowerAccumulator {
    fn begin(&mut self, circuit: &CompiledCircuit<'_>, _initial_levels: &[LogicLevel]) {
        self.vdd = circuit.vdd();
        self.net_loads.clear();
        self.net_loads.extend_from_slice(circuit.net_loads());
        self.counts.clear();
        self.counts.resize(self.net_loads.len(), 0);
    }

    fn on_transition(&mut self, net: NetId, _transition: &Transition) {
        self.counts[net.index()] += 1;
    }
}

/// Streams the run as a VCD document without retaining ramp waveforms.
///
/// During the run each transition is folded into the half-swing ideal
/// projection incrementally — compact `(time, level)` change points instead
/// of full ramp waveforms.  Nothing reaches the writer until
/// [`finish`](SimObserver::finish): the paper's per-input cancellation means
/// an accepted change can still be revoked by a later ramp, so the document
/// body cannot be flushed mid-run.  At `finish` the header (every net of
/// the circuit, in declaration order) and the time-merged change points are
/// written through [`halotis_waveform::vcd::StreamWriter`]; a run that
/// aborts with an error writes nothing.
///
/// The produced document is byte-identical to exporting a recorded result's
/// full trace with [`halotis_waveform::vcd::write`].
///
/// Unlike the other shipped observers, a `VcdStreamer` is **single-use**:
/// the writer cannot take back an already written document, so a second run
/// on the same instance is refused (surfaced as an error by
/// [`into_result`](VcdStreamer::into_result)) instead of appending a second
/// document.  Create one streamer per run.
///
/// I/O errors are deferred: observer callbacks cannot fail, so errors are
/// captured and surfaced by [`into_result`](VcdStreamer::into_result).
#[derive(Debug)]
pub struct VcdStreamer<W: Write> {
    writer: Option<W>,
    scope: String,
    vdd: Voltage,
    initials: Vec<LogicLevel>,
    names: Vec<String>,
    changes: Vec<Vec<(Time, LogicLevel)>>,
    error: Option<io::Error>,
    finished: bool,
}

impl<W: Write> VcdStreamer<W> {
    /// A streamer writing a document with module name `scope` to `writer`.
    pub fn new(writer: W, scope: impl Into<String>) -> Self {
        VcdStreamer {
            writer: Some(writer),
            scope: scope.into(),
            vdd: Voltage::ZERO,
            initials: Vec::new(),
            names: Vec::new(),
            changes: Vec::new(),
            error: None,
            finished: false,
        }
    }

    /// Consumes the streamer, returning the writer — or the first I/O error
    /// encountered, or an error when the run never reached
    /// [`finish`](SimObserver::finish) (so the document body was never
    /// written).
    pub fn into_result(self) -> io::Result<W> {
        if let Some(error) = self.error {
            return Err(error);
        }
        if !self.finished {
            return Err(io::Error::other(
                "simulation did not finish; VCD body not written",
            ));
        }
        Ok(self.writer.expect("writer present until consumed"))
    }
}

impl<W: Write> SimObserver for VcdStreamer<W> {
    fn begin(&mut self, circuit: &CompiledCircuit<'_>, initial_levels: &[LogicLevel]) {
        if self.finished {
            // A document was already written; appending a second one would
            // corrupt it.  Refuse the run and surface it via into_result.
            self.writer = None;
            self.finished = false;
            self.error = Some(io::Error::other(
                "VcdStreamer is single-use: create a new streamer per run",
            ));
            return;
        }
        self.vdd = circuit.vdd();
        self.initials = initial_levels.to_vec();
        self.names = circuit
            .netlist()
            .nets()
            .iter()
            .map(|net| net.name().to_string())
            .collect();
        self.changes.clear();
        self.changes.resize(self.names.len(), Vec::new());
        self.error = None;
        self.finished = false;
    }

    fn on_transition(&mut self, net: NetId, transition: &Transition) {
        let Some(cross) = transition.crossing_time(self.vdd.half(), self.vdd) else {
            return;
        };
        // Incremental half-swing projection, mirroring
        // `DigitalWaveform::ideal`: an overtaken change is revoked, a
        // level-preserving crossing is dropped.
        let changes = &mut self.changes[net.index()];
        let target = transition.edge().target_level();
        while let Some(&(last_time, _)) = changes.last() {
            if cross <= last_time {
                changes.pop();
            } else {
                break;
            }
        }
        let current = changes
            .last()
            .map(|&(_, level)| level)
            .unwrap_or(self.initials[net.index()]);
        if current != target {
            changes.push((cross, target));
        }
    }

    fn finish(&mut self, _stats: &SimulationStats) {
        let Some(writer) = self.writer.take() else {
            return;
        };
        let signals: Vec<(&str, LogicLevel)> = self
            .names
            .iter()
            .map(String::as_str)
            .zip(self.initials.iter().copied())
            .collect();
        let mut events: Vec<(Time, usize, LogicLevel)> = Vec::new();
        for (index, changes) in self.changes.iter().enumerate() {
            for &(t, level) in changes {
                events.push((t, index, level));
            }
        }
        events.sort_by_key(|&(t, index, _)| (t, index));

        let outcome = (|| -> io::Result<W> {
            let mut stream = StreamWriter::new(writer, &self.scope, &signals)?;
            for (t, index, level) in events {
                stream.change(t, index, level)?;
            }
            Ok(stream.into_inner())
        })();
        match outcome {
            Ok(writer) => {
                self.writer = Some(writer);
                self.finished = true;
            }
            Err(error) => self.error = Some(error),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{power, SimulationConfig};
    use halotis_core::Time;
    use halotis_netlist::{generators, technology, Library};
    use halotis_waveform::{vcd, Stimulus};

    fn chain_stimulus(library: &Library) -> Stimulus {
        let mut stimulus = Stimulus::new(library.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
        stimulus.drive("in", Time::from_ns(1.3), LogicLevel::Low);
        stimulus.drive("in", Time::from_ns(4.0), LogicLevel::High);
        stimulus
    }

    #[test]
    fn activity_counter_matches_recorded_waveform_lengths() {
        let netlist = generators::inverter_chain(5);
        let library = technology::cmos06();
        let circuit = CompiledCircuit::compile(&netlist, &library).unwrap();
        let stimulus = chain_stimulus(&library);

        let result = circuit.run(&stimulus, &SimulationConfig::ddm()).unwrap();
        let mut activity = ActivityCounter::new();
        let mut state = circuit.new_state();
        let stats = circuit
            .run_observed(
                &mut state,
                &stimulus,
                &SimulationConfig::ddm(),
                &mut activity,
            )
            .unwrap();

        assert_eq!(&stats, result.stats());
        assert_eq!(activity.stats(), result.stats());
        assert_eq!(activity.total_transitions(), stats.output_transitions);
        for net in netlist.nets() {
            assert_eq!(
                activity.transitions(net.id()),
                result.waveform(net.name()).unwrap().len(),
                "count mismatch on {}",
                net.name()
            );
        }
        assert_eq!(activity.per_net().len(), netlist.net_count());
    }

    #[test]
    fn power_accumulator_matches_the_recorded_estimate() {
        let netlist = generators::c17();
        let library = technology::cmos06();
        let circuit = CompiledCircuit::compile(&netlist, &library).unwrap();
        let mut stimulus = Stimulus::new(library.default_input_slew());
        for &input in netlist.primary_inputs() {
            let name = netlist.net(input).name();
            stimulus.set_initial(name, LogicLevel::Low);
            stimulus.drive(name, Time::from_ns(1.0), LogicLevel::High);
        }

        let result = circuit.run(&stimulus, &SimulationConfig::ddm()).unwrap();
        let recorded = power::estimate_compiled(&circuit, &result);

        let mut accumulator = PowerAccumulator::new();
        let mut state = circuit.new_state();
        circuit
            .run_observed(
                &mut state,
                &stimulus,
                &SimulationConfig::ddm(),
                &mut accumulator,
            )
            .unwrap();
        assert_eq!(accumulator.report(&netlist), recorded);
        assert!((accumulator.total_joules() - recorded.total_joules()).abs() < 1e-18);
        assert_eq!(
            accumulator.total_transitions(),
            recorded.total_transitions()
        );
    }

    #[test]
    fn vcd_streamer_matches_the_batch_export() {
        let netlist = generators::inverter_chain(4);
        let library = technology::cmos06();
        let circuit = CompiledCircuit::compile(&netlist, &library).unwrap();
        let stimulus = chain_stimulus(&library);

        let result = circuit.run(&stimulus, &SimulationConfig::ddm()).unwrap();
        let batch = vcd::to_string("chain", &result.full_trace());

        let mut streamer = VcdStreamer::new(Vec::new(), "chain");
        let mut state = circuit.new_state();
        circuit
            .run_observed(
                &mut state,
                &stimulus,
                &SimulationConfig::ddm(),
                &mut streamer,
            )
            .unwrap();
        let streamed = String::from_utf8(streamer.into_result().unwrap()).unwrap();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn vcd_streamer_reports_unfinished_runs() {
        let streamer: VcdStreamer<Vec<u8>> = VcdStreamer::new(Vec::new(), "scope");
        assert!(streamer.into_result().is_err());
    }

    #[test]
    fn vcd_streamer_refuses_a_second_run() {
        let netlist = generators::inverter_chain(2);
        let library = technology::cmos06();
        let circuit = CompiledCircuit::compile(&netlist, &library).unwrap();
        let stimulus = chain_stimulus(&library);
        let mut streamer = VcdStreamer::new(Vec::new(), "chain");
        let mut state = circuit.new_state();
        for _ in 0..2 {
            circuit
                .run_observed(
                    &mut state,
                    &stimulus,
                    &SimulationConfig::ddm(),
                    &mut streamer,
                )
                .unwrap();
        }
        // The second run must not append a second document; it is refused.
        let error = streamer.into_result().unwrap_err();
        assert!(error.to_string().contains("single-use"), "{error}");
    }

    #[test]
    fn tuple_observer_drives_both() {
        let netlist = generators::inverter_chain(3);
        let library = technology::cmos06();
        let circuit = CompiledCircuit::compile(&netlist, &library).unwrap();
        let stimulus = chain_stimulus(&library);
        let mut pair = (ActivityCounter::new(), PowerAccumulator::new());
        let mut state = circuit.new_state();
        let stats = circuit
            .run_observed(&mut state, &stimulus, &SimulationConfig::ddm(), &mut pair)
            .unwrap();
        assert_eq!(pair.0.total_transitions(), stats.output_transitions);
        assert_eq!(pair.1.total_transitions(), stats.output_transitions);
        assert!(pair.1.total_joules() > 0.0);
    }

    #[test]
    fn observers_reset_between_runs() {
        let netlist = generators::inverter_chain(3);
        let library = technology::cmos06();
        let circuit = CompiledCircuit::compile(&netlist, &library).unwrap();
        let stimulus = chain_stimulus(&library);
        let mut activity = ActivityCounter::new();
        let mut state = circuit.new_state();
        let first = circuit
            .run_observed(
                &mut state,
                &stimulus,
                &SimulationConfig::ddm(),
                &mut activity,
            )
            .unwrap();
        let total_first = activity.total_transitions();
        circuit
            .run_observed(
                &mut state,
                &stimulus,
                &SimulationConfig::ddm(),
                &mut activity,
            )
            .unwrap();
        assert_eq!(activity.total_transitions(), total_first);
        assert_eq!(first.output_transitions, total_first);
    }
}
