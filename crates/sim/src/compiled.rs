//! The compile-once/run-many simulation core.
//!
//! [`Simulator::run`](crate::Simulator::run) used to rebuild every static
//! table — dense pin indices, per-pin thresholds, timing arcs, gate loads,
//! fanout lists — on every invocation, so multi-run workloads (the Table 1/2
//! sweeps, the pulse-width scan, Monte-Carlo stimulus sets) paid the full
//! circuit-compilation cost per stimulus.  [`CompiledCircuit`] splits that
//! work off: it is built **once** per netlist + library and owns every
//! immutable table in flat, cache-friendly arrays, while the per-run mutable
//! state lives in a reusable [`SimState`] arena.
//!
//! ```text
//! Netlist + Library ──compile()──▶ CompiledCircuit   (immutable, Sync)
//!                                       │
//!              run_observed(&mut SimState, stimulus, config, &mut observer)
//!                                       │  (repeat at will, zero static
//!                                       ▼   re-preparation per run)
//!                               SimulationStats + whatever the
//!                               observer retained
//! ```
//!
//! [`run_with`](CompiledCircuit::run_with) (full-waveform
//! [`SimulationResult`]) and [`run_stats`](CompiledCircuit::run_stats)
//! (statistics only) are thin wrappers plugging a
//! [`WaveformRecorder`] or the null observer into that one loop.
//!
//! The tables are laid out CSR-style: per-pin quantities (threshold voltage,
//! timing arcs) are indexed by the dense pin index of
//! [`PinMap`], and the fanout adjacency of every net is
//! flattened into one `Vec` with a per-net offset array, so the hot loop of
//! the engine only chases one level of indirection.
//!
//! # Example: one compile, many runs
//!
//! ```
//! use halotis_core::{LogicLevel, Time};
//! use halotis_netlist::{generators, technology};
//! use halotis_sim::{CompiledCircuit, SimulationConfig};
//! use halotis_waveform::Stimulus;
//!
//! let netlist = generators::inverter_chain(3);
//! let library = technology::cmos06();
//! let circuit = CompiledCircuit::compile(&netlist, &library)?;
//! let mut state = circuit.new_state();
//! for at_ns in [1.0, 2.0, 3.0] {
//!     let mut stimulus = Stimulus::new(library.default_input_slew());
//!     stimulus.set_initial("in", LogicLevel::Low);
//!     stimulus.drive("in", Time::from_ns(at_ns), LogicLevel::High);
//!     let result = circuit.run_with(&mut state, &stimulus, &SimulationConfig::ddm())?;
//!     assert_eq!(
//!         result.ideal_waveform("out").unwrap().final_level(),
//!         LogicLevel::Low
//!     );
//! }
//! # Ok::<(), halotis_sim::SimulationError>(())
//! ```

use std::borrow::Cow;
use std::time::Instant;

use halotis_core::{Capacitance, Edge, GateId, LogicLevel, NetId, PinRef, TimeDelta, Voltage};
use halotis_delay::{BoundArc, CellClass, DelayContext, DelayModel, DelayModelKind, PinTiming};
use halotis_netlist::edit::{EditLog, EditOp, EditSession};
use halotis_netlist::levelize::{self, Levelization};
use halotis_netlist::{eval, CellKind, Library, Netlist, NetlistError};
use halotis_waveform::{Stimulus, Transition};

use crate::config::SimulationConfig;
use crate::error::SimulationError;
use crate::event::Event;
use crate::observer::{SimObserver, WaveformRecorder};
use crate::pins::PinMap;
use crate::queue::ScheduleOutcome;
use crate::ramp;
use crate::result::SimulationResult;
use crate::state::{SimState, NO_PREVIOUS_RAMP};
use crate::stats::SimulationStats;

/// Sentinel in the per-fanout progress tables for "this threshold lies
/// outside the `(0, Vdd)` swing and is never crossed" (legal progress values
/// are within `[0, 1]`).
const NEVER_CROSSED: f64 = -1.0;

/// Zeroed timing arc used to fill freshly allocated pin rows during edit
/// replay, before the dirty-cone rebuild overwrites them with library data.
/// Never evaluated: a row carrying it belongs to a gate in the dirty set.
const PLACEHOLDER_TIMING: PinTiming = {
    const EDGE: halotis_delay::EdgeTiming = halotis_delay::EdgeTiming {
        propagation: halotis_delay::PropagationCoeffs {
            t_intrinsic: TimeDelta::ZERO,
            r_load_ohms: 0.0,
            s_slew: 0.0,
        },
        output_slew: halotis_delay::SlewCoeffs {
            base: TimeDelta::ZERO,
            load_factor_ohms: 0.0,
        },
        degradation: halotis_delay::DegradationCoeffs {
            a_volt_seconds: 0.0,
            b_volt_per_farad_seconds: 0.0,
            c_volts: 0.0,
        },
    };
    PinTiming {
        rise: EDGE,
        fall: EDGE,
    }
};

/// Precomputes, for one fanout input threshold, the ramp progress fraction
/// at which a rising (index 0) / falling (index 1) transition crosses it —
/// the compile-time half of [`Transition::crossing_time`], byte-identical in
/// its f64 arithmetic so crossing times are bit-equal to the on-the-fly
/// division it replaces.
fn crossing_progress(threshold: Voltage, vdd: Voltage) -> [f64; 2] {
    let fraction = threshold / vdd;
    if (0.0..=1.0).contains(&fraction) {
        [fraction, 1.0 - fraction]
    } else {
        [NEVER_CROSSED, NEVER_CROSSED]
    }
}

/// A netlist + library compiled into flat lookup tables, ready to execute
/// any number of stimuli without re-preparation.
///
/// `CompiledCircuit` is immutable and `Sync`: one instance can be shared by
/// the worker threads of a [`BatchRunner`](crate::BatchRunner).  All per-run
/// mutable state lives in [`SimState`], obtained from [`new_state`] and
/// reusable across runs.
///
/// [`new_state`]: CompiledCircuit::new_state
#[derive(Clone, Debug)]
pub struct CompiledCircuit<'a> {
    /// The compiled netlist.  Starts as a borrow; the first
    /// [`edit`](CompiledCircuit::edit) clones it into owned storage so the
    /// circuit can mutate its own copy (copy-on-write).
    netlist: Cow<'a, Netlist>,
    library: &'a Library,
    vdd: Voltage,
    pins: PinMap,
    /// The levelization of the netlist, kept current across edits by
    /// [`Levelization::update`] — run initialisation evaluates with this
    /// order instead of re-levelizing per run.
    levels: Levelization,
    /// Threshold voltage per dense pin index.
    pin_thresholds: Vec<Voltage>,
    /// Timing arcs per dense pin index.
    pin_timing: Vec<PinTiming>,
    /// Output load per gate.
    gate_loads: Vec<Capacitance>,
    /// Delay-model dispatch tag per gate (see [`CellClass`]).
    gate_classes: Vec<CellClass>,
    /// Switched capacitance per net (also used by
    /// [`power::estimate_compiled`](crate::power::estimate_compiled)).
    net_loads: Vec<Capacitance>,
    /// CSR fanout adjacency as per-net windows: net `n` drives the rows
    /// `fanout_start[n] .. fanout_start[n] + fanout_len[n]` of the fanout
    /// columns, with `fanout_cap[n]` rows reserved.  Windows (instead of a
    /// packed `n + 1` prefix array) let an edit rewrite or grow one net's
    /// rows without shifting every later net; a window that outgrows its
    /// capacity relocates to the end of the arena with pow2 headroom.  The
    /// columns themselves are struct-of-arrays so the scheduling loop
    /// touches only what it needs.
    fanout_start: Vec<u32>,
    /// Live row count of each net's fanout window.
    fanout_len: Vec<u32>,
    /// Reserved row count of each net's fanout window.
    fanout_cap: Vec<u32>,
    /// Fanout column: the gate input pin the net drives.
    fanout_pins: Vec<PinRef>,
    /// Fanout column: that pin's dense index (see [`PinMap`]).
    fanout_dense: Vec<u32>,
    /// Fanout column: precomputed `[rise, fall]` crossing progress of the
    /// pin's threshold (see [`crossing_progress`]).
    fanout_progress: Vec<[f64; 2]>,
    /// Owning gate of every dense pin — the hot loop's event → gate hop,
    /// without touching the netlist's gate objects.
    pin_gate: Vec<u32>,
    /// `[rise, fall]` timing arcs per dense pin with the gate's load and the
    /// supply folded in (see [`BoundArc`]) — the built-in models evaluate
    /// these directly, skipping the per-event load/tau recomputation.
    pin_bound: Vec<[BoundArc; 2]>,
    /// Cell kind per gate (the evaluate dispatch), densely packed.
    gate_kinds: Vec<CellKind>,
    /// Input count per gate, paired with [`PinMap::gate_offset`] to form the
    /// gate's pin-level window.
    gate_pin_counts: Vec<u32>,
    /// Output net per gate.
    gate_outputs: Vec<NetId>,
    /// Primary-output names in netlist declaration order.
    output_names: Vec<String>,
}

impl<'a> CompiledCircuit<'a> {
    /// Compiles `netlist` against `library` into flat tables.
    ///
    /// # Errors
    ///
    /// Returns [`SimulationError::Library`] when a gate uses a cell or pin
    /// the library does not characterise — the same condition the legacy
    /// single-shot path reported per run.
    pub fn compile(netlist: &'a Netlist, library: &'a Library) -> Result<Self, SimulationError> {
        Self::compile_cow(Cow::Borrowed(netlist), library)
    }

    /// [`compile`](Self::compile) for an *owned* netlist: the circuit
    /// carries the netlist itself, so the result's lifetime is tied only to
    /// `library`.  With a `&'static Library` this yields a
    /// `CompiledCircuit<'static>` that can be cached, sent across threads
    /// and outlive every caller — the shape a resident simulation service
    /// needs.
    ///
    /// # Errors
    ///
    /// As [`compile`](Self::compile).
    pub fn compile_owned(netlist: Netlist, library: &'a Library) -> Result<Self, SimulationError> {
        Self::compile_cow(Cow::Owned(netlist), library)
    }

    /// The shared compile body: builds every flat table from the borrowed
    /// view, then moves the `Cow` into the finished circuit.
    fn compile_cow(
        source: Cow<'a, Netlist>,
        library: &'a Library,
    ) -> Result<Self, SimulationError> {
        let netlist: &Netlist = source.as_ref();
        let vdd = library.vdd();
        let pins = PinMap::new(netlist);

        let mut pin_thresholds: Vec<Voltage> = vec![Voltage::ZERO; pins.len()];
        let mut pin_timing: Vec<PinTiming> = Vec::with_capacity(pins.len());
        for gate in netlist.gates() {
            for input in 0..gate.inputs().len() {
                let pin = PinRef::new(gate.id(), input as u32);
                let dense = pins.index(pin);
                let fraction = netlist.input_threshold_fraction(pin, library)?;
                pin_thresholds[dense] = vdd.fraction(fraction);
                pin_timing.push(library.pin(gate.kind(), input)?.timing);
            }
        }

        let net_loads: Vec<Capacitance> = netlist
            .nets()
            .iter()
            .map(|net| netlist.net_load(net.id(), library))
            .collect::<Result<_, _>>()?;
        let gate_loads: Vec<Capacitance> = netlist
            .gates()
            .iter()
            .map(|gate| net_loads[gate.output().index()])
            .collect();
        let gate_classes: Vec<CellClass> = netlist
            .gates()
            .iter()
            .map(|gate| gate.kind().class())
            .collect();

        let mut fanout_start = Vec::with_capacity(netlist.net_count());
        let mut fanout_len = Vec::with_capacity(netlist.net_count());
        let mut fanout_cap = Vec::with_capacity(netlist.net_count());
        let mut fanout_pins = Vec::new();
        let mut fanout_dense = Vec::new();
        let mut fanout_progress = Vec::new();
        for net in netlist.nets() {
            fanout_start.push(u32::try_from(fanout_pins.len()).expect("fanout rows fit u32"));
            let rows = u32::try_from(net.loads().len()).expect("fanout rows fit u32");
            fanout_len.push(rows);
            fanout_cap.push(rows);
            for &pin in net.loads() {
                let dense = pins.index(pin);
                fanout_pins.push(pin);
                fanout_dense.push(u32::try_from(dense).expect("pin count fits u32"));
                fanout_progress.push(crossing_progress(pin_thresholds[dense], vdd));
            }
        }

        let mut pin_gate = vec![0u32; pins.len()];
        let mut gate_kinds = Vec::with_capacity(netlist.gate_count());
        let mut gate_pin_counts = Vec::with_capacity(netlist.gate_count());
        let mut gate_outputs = Vec::with_capacity(netlist.gate_count());
        for gate in netlist.gates() {
            let block = pins.gate_offset(gate.id());
            for slot in &mut pin_gate[block..block + gate.inputs().len()] {
                *slot = u32::try_from(gate.id().index()).expect("gate count fits u32");
            }
            gate_kinds.push(gate.kind());
            gate_pin_counts.push(gate.inputs().len() as u32);
            gate_outputs.push(gate.output());
        }

        let pin_bound: Vec<[BoundArc; 2]> = (0..pins.len())
            .map(|dense| {
                let load = gate_loads[pin_gate[dense] as usize];
                let timing = &pin_timing[dense];
                [
                    BoundArc::bind(&timing.rise, vdd, load),
                    BoundArc::bind(&timing.fall, vdd, load),
                ]
            })
            .collect();

        let output_names = netlist
            .primary_outputs()
            .iter()
            .map(|&net| netlist.net(net).name().to_string())
            .collect();

        let levels = levelize::levelize(netlist)?;
        Ok(CompiledCircuit {
            levels,
            netlist: source,
            library,
            vdd,
            pins,
            pin_thresholds,
            pin_timing,
            gate_loads,
            gate_classes,
            net_loads,
            fanout_start,
            fanout_len,
            fanout_cap,
            fanout_pins,
            fanout_dense,
            fanout_progress,
            pin_gate,
            pin_bound,
            gate_kinds,
            gate_pin_counts,
            gate_outputs,
            output_names,
        })
    }

    /// The compiled netlist.  After an [`edit`](CompiledCircuit::edit) this
    /// is the circuit's own mutated copy, so the returned borrow is tied to
    /// `self` rather than the original compile-time netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The levelization of the compiled netlist, kept current across edits.
    pub fn levels(&self) -> &Levelization {
        &self.levels
    }

    /// The cell library the circuit was compiled against.
    pub fn library(&self) -> &'a Library {
        self.library
    }

    /// The supply voltage of the library.
    pub fn vdd(&self) -> Voltage {
        self.vdd
    }

    /// The dense pin indexing of the circuit.
    pub fn pins(&self) -> &PinMap {
        &self.pins
    }

    /// The precomputed switched capacitance of every net, indexed by net id.
    pub fn net_loads(&self) -> &[Capacitance] {
        &self.net_loads
    }

    /// The threshold voltage of one gate input pin (the per-input `V_T` of
    /// the paper's Fig. 3).
    pub fn pin_threshold(&self, pin: PinRef) -> Voltage {
        self.pin_thresholds[self.pins.index(pin)]
    }

    /// The library timing arcs of one gate input pin.
    pub fn pin_timing(&self, pin: PinRef) -> &PinTiming {
        &self.pin_timing[self.pins.index(pin)]
    }

    /// The output load one gate drives (its output net's switched
    /// capacitance).
    pub fn gate_load(&self, gate: GateId) -> Capacitance {
        self.gate_loads[gate.index()]
    }

    /// Exports the engine's fanout tables as a
    /// [`CsrGraph`](halotis_netlist::graph::CsrGraph) — the same adjacency
    /// [`NetlistGraph::to_csr`](halotis_netlist::graph::NetlistGraph::to_csr)
    /// builds by walking the netlist, but read straight out of the compiled
    /// CSR windows, so it reflects the circuit's current (possibly edited)
    /// state.  Graph passes like [`sta`](crate::sta) run on this export.
    pub fn fanout_csr(&self) -> halotis_netlist::graph::CsrGraph {
        let edges = (0..self.netlist.net_count()).flat_map(|net_index| {
            let start = self.fanout_start[net_index] as usize;
            let len = self.fanout_len[net_index] as usize;
            self.fanout_pins[start..start + len]
                .iter()
                .map(move |&pin| halotis_netlist::graph::GraphEdge {
                    source: NetId::from_usize(net_index),
                    target: self.gate_outputs[pin.gate().index()],
                    gate: pin.gate(),
                    pin: pin.input(),
                })
        });
        halotis_netlist::graph::CsrGraph::from_edges(self.netlist.net_count(), edges)
    }

    /// Allocates a fresh state arena sized for this circuit.
    ///
    /// The arena is reusable: every [`run_with`](CompiledCircuit::run_with)
    /// resets it, so repeated runs perform no per-run allocation of the
    /// static structures (gate state, pin levels, queue slots).
    pub fn new_state(&self) -> SimState {
        SimState::for_circuit(
            self.pins.len(),
            self.netlist.gate_count(),
            self.netlist.net_count(),
        )
    }

    /// Grows an existing state arena to match this circuit after edits,
    /// keeping every untouched row in place (no reallocation unless a
    /// dimension outgrew its capacity).  Call after
    /// [`apply_edits`](CompiledCircuit::apply_edits) /
    /// [`edit`](CompiledCircuit::edit) on every arena that should keep
    /// serving this circuit.
    pub fn sync_state(&self, state: &mut SimState) {
        state.resize(
            self.pins.len(),
            self.netlist.gate_count(),
            self.netlist.net_count(),
        );
    }

    /// Reshapes an arbitrary state arena — possibly sized for a *different*
    /// circuit — to fit this one, clearing all queued work.  Unlike
    /// [`sync_state`](CompiledCircuit::sync_state), which tracks one
    /// circuit's in-place edits and therefore insists dimensions never
    /// shrink, this severs any association with the arena's previous
    /// circuit: a worker can hold one long-lived arena and point it at
    /// whichever cached circuit the next job needs.  Runs reset every row
    /// they read, so results are bit-identical to a fresh
    /// [`new_state`](CompiledCircuit::new_state) arena.
    pub fn adapt_state(&self, state: &mut SimState) {
        state.reshape(
            self.pins.len(),
            self.netlist.gate_count(),
            self.netlist.net_count(),
        );
    }

    /// Mutates the circuit's netlist through an [`EditSession`] and applies
    /// the resulting [`EditLog`] incrementally — the one-call ECO loop:
    ///
    /// ```
    /// use halotis_netlist::{generators, technology, CellKind};
    /// use halotis_sim::CompiledCircuit;
    ///
    /// let netlist = generators::c17();
    /// let library = technology::cmos06();
    /// let mut circuit = CompiledCircuit::compile(&netlist, &library)?;
    /// let target = circuit.netlist().gates()[0].id();
    /// let log = circuit.edit(|session| session.swap_cell_kind(target, CellKind::Nor2))?;
    /// assert!(!log.is_empty());
    /// # Ok::<(), halotis_sim::SimulationError>(())
    /// ```
    ///
    /// The first edit clones the borrowed netlist into owned storage
    /// (copy-on-write); later edits mutate that copy directly.
    ///
    /// # Errors
    ///
    /// * [`SimulationError::Netlist`] when the closure's mutation is
    ///   rejected.  The session is dropped without applying anything, but
    ///   mutations the closure already performed *before* the failing call
    ///   are lost too — on error, treat the circuit as stale and recompile.
    /// * The conditions of [`apply_edits`](CompiledCircuit::apply_edits).
    pub fn edit(
        &mut self,
        f: impl FnOnce(&mut EditSession<'_>) -> Result<(), NetlistError>,
    ) -> Result<EditLog, SimulationError> {
        let mut session = self.netlist.to_mut().begin_edit();
        f(&mut session)?;
        let log = session.finish();
        self.apply_edits(&log)?;
        Ok(log)
    }

    /// Incrementally recompiles after the circuit's netlist was mutated by
    /// an edit session, rebuilding only the dirty fanin/fanout cones the
    /// [`EditLog`] names: per-gate loads, classes and kinds, per-pin
    /// thresholds, timing and pre-bound arcs, per-net loads and fanout
    /// windows, and the levelization.  Untouched rows are not rewritten, and
    /// simulation output after the patch is bit-identical to a from-scratch
    /// [`compile`](CompiledCircuit::compile) of the mutated netlist.
    ///
    /// The netlist held by `self` must already carry exactly the mutations
    /// `log` describes (which [`edit`](CompiledCircuit::edit) guarantees).
    /// Existing [`SimState`] arenas need a
    /// [`sync_state`](CompiledCircuit::sync_state) call before their next
    /// run.
    ///
    /// # Errors
    ///
    /// [`SimulationError::Library`] when an edited gate uses a cell or pin
    /// the library does not characterise.  The tables are left partially
    /// patched in that case — recompile from scratch before further use.
    pub fn apply_edits(&mut self, log: &EditLog) -> Result<(), SimulationError> {
        // --- phase 1: replay the shape ops ---------------------------------
        // Mirrors the id renumbering the edit session performed so every
        // table is indexable in the final id space; appended rows hold
        // placeholders that phase 2 overwrites (appended gates and their
        // nets are always in the dirty sets).
        for op in log.ops() {
            match op {
                EditOp::GateAppended { pin_count } => {
                    let pin_count = *pin_count as usize;
                    self.pins.allocate_gate(pin_count);
                    let arena = self.pins.len();
                    self.pin_thresholds.resize(arena, Voltage::ZERO);
                    self.pin_timing.resize(arena, PLACEHOLDER_TIMING);
                    self.pin_bound.resize(
                        arena,
                        [BoundArc::bind(&PLACEHOLDER_TIMING.rise, self.vdd, Capacitance::ZERO); 2],
                    );
                    self.pin_gate.resize(arena, 0);
                    self.gate_loads.push(Capacitance::ZERO);
                    self.gate_classes.push(CellClass::default());
                    self.gate_kinds.push(CellKind::Inv);
                    self.gate_pin_counts.push(pin_count as u32);
                    self.gate_outputs.push(NetId::new(0));
                    self.net_loads.push(Capacitance::ZERO);
                    self.fanout_start.push(0);
                    self.fanout_len.push(0);
                    self.fanout_cap.push(0);
                }
                EditOp::GateRemoved {
                    gate_index,
                    net_index,
                } => {
                    let g = *gate_index as usize;
                    let n = *net_index as usize;
                    self.pins
                        .free_gate(GateId::from_usize(g), self.gate_pin_counts[g] as usize);
                    self.gate_loads.swap_remove(g);
                    self.gate_classes.swap_remove(g);
                    self.gate_kinds.swap_remove(g);
                    self.gate_pin_counts.swap_remove(g);
                    self.gate_outputs.swap_remove(g);
                    self.net_loads.swap_remove(n);
                    self.fanout_start.swap_remove(n);
                    self.fanout_len.swap_remove(n);
                    self.fanout_cap.swap_remove(n);
                    // Rows naming the moved gate/net by the old id (pin_gate,
                    // gate_outputs, fanout windows) are rebuilt in phase 2:
                    // the session marked everything the move touched dirty.
                }
                EditOp::NetExposed { name, position } => {
                    let at = (*position as usize).min(self.output_names.len());
                    self.output_names.insert(at, name.clone());
                }
                EditOp::NetUnexposed { name } => self.output_names.retain(|n| n != name),
            }
        }

        // --- phase 2: rebuild the dirty cones ------------------------------
        let netlist: &Netlist = &self.netlist;
        // (a) per-net switched capacitance — before the gate pass, which
        // folds these loads into the pre-bound arcs.
        for &net in log.dirty_nets() {
            self.net_loads[net.index()] = netlist.net_load(net, self.library)?;
        }
        // (b) per-gate rows and their pin blocks.
        for &gate in log.dirty_gates() {
            let g = gate.index();
            let gate_ref = netlist.gate(gate);
            let kind = gate_ref.kind();
            self.gate_kinds[g] = kind;
            self.gate_classes[g] = kind.class();
            self.gate_pin_counts[g] = gate_ref.inputs().len() as u32;
            self.gate_outputs[g] = gate_ref.output();
            self.gate_loads[g] = self.net_loads[gate_ref.output().index()];
            let block = self.pins.gate_offset(gate);
            for input in 0..gate_ref.inputs().len() {
                let pin = PinRef::new(gate, input as u32);
                let dense = block + input;
                self.pin_gate[dense] = u32::try_from(g).expect("gate count fits u32");
                let fraction = netlist.input_threshold_fraction(pin, self.library)?;
                self.pin_thresholds[dense] = self.vdd.fraction(fraction);
                self.pin_timing[dense] = self.library.pin(kind, input)?.timing;
                self.pin_bound[dense] = [
                    BoundArc::bind(&self.pin_timing[dense].rise, self.vdd, self.gate_loads[g]),
                    BoundArc::bind(&self.pin_timing[dense].fall, self.vdd, self.gate_loads[g]),
                ];
            }
        }
        // (c) per-net fanout windows — after the gate pass so the crossing
        // progress reads rebuilt thresholds.  In-place rewrite while the
        // window fits; relocate to the end of the arena with pow2 headroom
        // when it does not (the old rows become dead).
        for &net in log.dirty_nets() {
            let n = net.index();
            let loads = netlist.net(net).loads();
            let rows = u32::try_from(loads.len()).expect("fanout rows fit u32");
            if rows > self.fanout_cap[n] {
                let cap = rows.next_power_of_two().max(2);
                self.fanout_start[n] =
                    u32::try_from(self.fanout_pins.len()).expect("fanout rows fit u32");
                self.fanout_cap[n] = cap;
                let grown = self.fanout_pins.len() + cap as usize;
                self.fanout_pins
                    .resize(grown, PinRef::new(GateId::new(0), 0));
                self.fanout_dense.resize(grown, 0);
                self.fanout_progress.resize(grown, [NEVER_CROSSED; 2]);
            }
            self.fanout_len[n] = rows;
            let start = self.fanout_start[n] as usize;
            for (row, &pin) in loads.iter().enumerate() {
                let dense = self.pins.index(pin);
                self.fanout_pins[start + row] = pin;
                self.fanout_dense[start + row] = u32::try_from(dense).expect("pin count fits u32");
                self.fanout_progress[start + row] =
                    crossing_progress(self.pin_thresholds[dense], self.vdd);
            }
        }
        // (d) incremental re-levelization of the affected cones.
        self.levels.update(netlist, log)?;
        Ok(())
    }

    /// Runs one simulation with a throwaway state arena.
    ///
    /// Convenience for one-off runs; multi-run workloads should allocate the
    /// arena once via [`new_state`](CompiledCircuit::new_state) and call
    /// [`run_with`](CompiledCircuit::run_with).
    ///
    /// # Errors
    ///
    /// Same conditions as [`run_with`](CompiledCircuit::run_with).
    pub fn run(
        &self,
        stimulus: &Stimulus,
        config: &SimulationConfig,
    ) -> Result<SimulationResult, SimulationError> {
        let mut state = self.new_state();
        self.run_with(&mut state, stimulus, config)
    }

    /// Runs one simulation, reusing the caller's state arena and recording
    /// full waveforms.
    ///
    /// This is [`run_observed`](CompiledCircuit::run_observed) with a
    /// [`WaveformRecorder`], packaged as a [`SimulationResult`].  The arena
    /// is reset on entry, so the produced waveforms and statistics are
    /// bit-identical to a run with a freshly allocated state.
    ///
    /// # Errors
    ///
    /// * [`SimulationError::UndrivenPrimaryInput`] if the stimulus does not
    ///   cover every primary input,
    /// * [`SimulationError::EventBudgetExhausted`] if the configured event
    ///   budget is exceeded.
    ///
    /// # Panics
    ///
    /// Panics if `state` was created for a differently sized circuit.
    pub fn run_with(
        &self,
        state: &mut SimState,
        stimulus: &Stimulus,
        config: &SimulationConfig,
    ) -> Result<SimulationResult, SimulationError> {
        let started = Instant::now();
        let mut recorder = WaveformRecorder::new();
        let stats = self.run_observed(state, stimulus, config, &mut recorder)?;
        Ok(SimulationResult::new(
            config.model.clone(),
            self.vdd,
            recorder.into_trace(&self.netlist),
            self.output_names.clone(),
            stats,
            started.elapsed(),
        ))
    }

    /// Runs one simulation for its statistics only — no waveform recording,
    /// no per-net allocation (the null observer `()` under the hood).
    ///
    /// # Errors
    ///
    /// Same conditions as [`run_with`](CompiledCircuit::run_with).
    pub fn run_stats(
        &self,
        state: &mut SimState,
        stimulus: &Stimulus,
        config: &SimulationConfig,
    ) -> Result<SimulationStats, SimulationError> {
        self.run_observed(state, stimulus, config, &mut ())
    }

    /// Runs one simulation, streaming activity into `observer` (the paper's
    /// Fig. 4 loop, observation decoupled from execution).
    ///
    /// The engine pushes every emitted transition, filtered event and gate
    /// evaluation to the [`SimObserver`]; what (if anything) is retained is
    /// the observer's choice.  See [`observer`](crate::observer) for the
    /// shipped implementations.
    ///
    /// # Errors
    ///
    /// * [`SimulationError::UndrivenPrimaryInput`] if the stimulus does not
    ///   cover every primary input,
    /// * [`SimulationError::EventBudgetExhausted`] if the configured event
    ///   budget is exceeded.  The observer's `finish` is *not* called on
    ///   error paths.
    ///
    /// # Panics
    ///
    /// Panics if `state` was created for a differently sized circuit.
    pub fn run_observed<O: SimObserver + ?Sized>(
        &self,
        state: &mut SimState,
        stimulus: &Stimulus,
        config: &SimulationConfig,
        observer: &mut O,
    ) -> Result<SimulationStats, SimulationError> {
        let netlist: &Netlist = &self.netlist;
        // Devirtualise the built-in models per gate: `DelayModel::kind_for`
        // guarantees numerical identity with the named built-in for that
        // gate's cell class, so the hot loop can evaluate the pre-bound arc
        // directly (inlined, no vtable) — including through composites like
        // `PerCellOverride` whose members are built-ins.  Gates that resolve
        // to `None` keep dynamic dispatch.
        let model: &dyn DelayModel = config.model.as_dyn();
        state.gate_model_kinds.clear();
        state
            .gate_model_kinds
            .extend(self.gate_classes.iter().map(|&class| model.kind_for(class)));
        state.check_capacity(self.pins.len(), netlist.gate_count(), netlist.net_count());

        // --- initial state --------------------------------------------------
        let mut assignments = Vec::with_capacity(netlist.primary_inputs().len());
        for &input in netlist.primary_inputs() {
            let name = netlist.net(input).name();
            let Some(waveform) = stimulus.waveform(name) else {
                return Err(SimulationError::UndrivenPrimaryInput {
                    net: name.to_string(),
                });
            };
            assignments.push((input, waveform.initial()));
        }
        let initial_levels = eval::evaluate_with_order(netlist, &self.levels, &assignments);
        state.reset(netlist, &self.pins, &initial_levels);
        observer.begin(self, &initial_levels);

        // --- stimulus events ------------------------------------------------
        let mut stats = SimulationStats::default();
        for &input in netlist.primary_inputs() {
            let net = netlist.net(input);
            let waveform = stimulus
                .waveform(net.name())
                .expect("checked above: every primary input is driven");
            for transition in waveform.transitions() {
                observer.on_transition(input, transition);
                stats.output_transitions += 1;
                self.schedule_fanouts(
                    state,
                    observer,
                    input.index(),
                    transition,
                    transition.edge().target_level(),
                );
            }
        }

        // --- main loop (paper Fig. 4) ---------------------------------------
        // Every lookup below walks the flat compiled tables by dense pin /
        // gate index; the netlist's gate objects are never touched here.
        while let Some((dense, event)) = state.queue.pop_indexed() {
            if let Some(limit) = config.time_limit {
                if event.time > limit {
                    break;
                }
            }
            stats.events_processed += 1;
            if stats.events_processed > config.max_events {
                return Err(SimulationError::EventBudgetExhausted {
                    budget: config.max_events,
                });
            }

            let gate_index = self.pin_gate[dense] as usize;
            let was = state.pin_levels[dense];
            state.pin_levels[dense] = event.new_level;
            let block = self.pins.gate_offset(GateId::from_usize(gate_index));
            let count = self.gate_pin_counts[gate_index] as usize;
            let kind = self.gate_kinds[gate_index];
            let new_output = if kind.is_sequential() {
                // Registers compute the next stored state from the stored
                // output plus the pin transition (edge detection needs the
                // pre-event level); `output_target` *is* the stored state.
                kind.next_state(
                    &state.pin_levels[block..block + count],
                    state.output_target[gate_index],
                    dense - block,
                    was,
                )
            } else {
                kind.evaluate(&state.pin_levels[block..block + count])
            };
            if new_output == state.output_target[gate_index] {
                continue;
            }
            let Some(edge) = ramp::edge_toward(state.output_target[gate_index], new_output) else {
                state.output_target[gate_index] = new_output;
                continue;
            };

            let previous_start = state.last_output_start[gate_index];
            let previous = (previous_start != NO_PREVIOUS_RAMP).then_some(previous_start);
            let elapsed = previous.map(|previous| {
                let delta = event.time - previous;
                if delta.is_negative() {
                    TimeDelta::ZERO
                } else {
                    delta
                }
            });
            let outcome = match state.gate_model_kinds[gate_index] {
                // Built-in models evaluate the pre-bound arc: no vtable, and
                // the load/supply terms were folded in at compile time
                // (bit-identical to the context path, see `BoundArc`).
                Some(kind) => {
                    let edge_index = match edge {
                        Edge::Rise => 0,
                        Edge::Fall => 1,
                    };
                    self.pin_bound[dense][edge_index].evaluate(kind, event.input_slew, elapsed)
                }
                None => {
                    let arc = self.pin_timing[dense].for_edge(edge);
                    let ctx = DelayContext {
                        vdd: self.vdd,
                        load: self.gate_loads[gate_index],
                        input_slew: event.input_slew,
                        time_since_last_output: elapsed,
                        cell_class: self.gate_classes[gate_index],
                    };
                    model.evaluate(arc, &ctx)
                }
            };
            observer.on_gate_evaluated(GateId::from_usize(gate_index), &event, &outcome);
            if outcome.is_degraded() {
                stats.degraded_transitions += 1;
            }
            if outcome.is_fully_collapsed() {
                stats.collapsed_transitions += 1;
            }

            let start = ramp::ramp_start(event.time, outcome.delay, outcome.output_slew, previous);
            let transition = Transition::new(start, outcome.output_slew, edge);
            let output_net = self.gate_outputs[gate_index];
            observer.on_transition(output_net, &transition);
            stats.output_transitions += 1;
            state.last_output_start[gate_index] = transition.start();
            state.output_target[gate_index] = new_output;

            self.schedule_fanouts(state, observer, output_net.index(), &transition, new_output);
        }

        stats.events_scheduled = state.queue.scheduled();
        stats.events_filtered = state.queue.filtered();
        stats.queue_high_water = state.queue.high_water();
        observer.finish(&stats);
        Ok(stats)
    }

    /// Runs the same stimulus under both delay models through one shared
    /// state arena and returns `(ddm, cdm)` — the comparison the paper's
    /// Table 1 makes, without compiling or allocating twice.
    ///
    /// # Errors
    ///
    /// Propagates the first error of either run.
    pub fn run_both_models(
        &self,
        stimulus: &Stimulus,
        base: &SimulationConfig,
    ) -> Result<(SimulationResult, SimulationResult), SimulationError> {
        let mut state = self.new_state();
        let ddm_config = base.clone().model(DelayModelKind::Degradation);
        let cdm_config = base.clone().model(DelayModelKind::Conventional);
        Ok((
            self.run_with(&mut state, stimulus, &ddm_config)?,
            self.run_with(&mut state, stimulus, &cdm_config)?,
        ))
    }

    /// Schedules the events one output transition generates: one per fanout
    /// input whose threshold the ramp crosses, each at its own precomputed
    /// crossing progress (paper Fig. 3) — shared by the stimulus loop and
    /// the main loop.
    #[inline]
    fn schedule_fanouts<O: SimObserver + ?Sized>(
        &self,
        state: &mut SimState,
        observer: &mut O,
        net_index: usize,
        transition: &Transition,
        target: LogicLevel,
    ) {
        let edge_index = match transition.edge() {
            Edge::Rise => 0,
            Edge::Fall => 1,
        };
        let start = transition.start();
        let slew = transition.slew();
        let window = self.fanout_start[net_index] as usize;
        for row in window..window + self.fanout_len[net_index] as usize {
            let progress = self.fanout_progress[row][edge_index];
            if progress >= 0.0 {
                let crossing = start + slew.scale(progress);
                let pin = self.fanout_pins[row];
                let outcome = state.queue.schedule(
                    self.fanout_dense[row] as usize,
                    Event::new(crossing, pin, target, slew),
                );
                if outcome == ScheduleOutcome::CancelledPrevious {
                    observer.on_event_filtered(pin, crossing);
                }
            }
        }
    }

    #[cfg(test)]
    fn net_fanout_rows(&self, net_index: usize) -> std::ops::Range<usize> {
        let start = self.fanout_start[net_index] as usize;
        start..start + self.fanout_len[net_index] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_core::{LogicLevel, Time};
    use halotis_netlist::{generators, technology};

    fn chain_stimulus(library: &Library) -> Stimulus {
        let mut stimulus = Stimulus::new(library.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
        stimulus.drive("in", Time::from_ns(6.0), LogicLevel::Low);
        stimulus
    }

    #[test]
    fn fanout_tables_cover_every_load_in_declaration_order() {
        let netlist = generators::c17();
        let library = technology::cmos06();
        let circuit = CompiledCircuit::compile(&netlist, &library).unwrap();
        for net in netlist.nets() {
            let rows = circuit.net_fanout_rows(net.id().index());
            assert_eq!(rows.len(), net.loads().len());
            for (row, &pin) in rows.zip(net.loads()) {
                assert_eq!(circuit.fanout_pins[row], pin);
                assert_eq!(
                    circuit.fanout_dense[row] as usize,
                    circuit.pins().index(pin)
                );
                let threshold = circuit.pin_thresholds[circuit.pins().index(pin)];
                assert_eq!(
                    circuit.fanout_progress[row],
                    crossing_progress(threshold, circuit.vdd())
                );
                // The precomputed progress reproduces the on-the-fly
                // crossing computation bit-exactly.
                let ramp = Transition::new(
                    halotis_core::Time::from_ns(1.0),
                    TimeDelta::from_ps(400.0),
                    Edge::Rise,
                );
                assert_eq!(
                    ramp.crossing_time(threshold, circuit.vdd()),
                    (circuit.fanout_progress[row][0] >= 0.0)
                        .then(|| ramp.start() + ramp.slew().scale(circuit.fanout_progress[row][0])),
                );
            }
        }
        assert_eq!(circuit.net_loads().len(), netlist.net_count());
        assert_eq!(circuit.vdd(), library.vdd());
        assert_eq!(circuit.netlist().name(), netlist.name());
        assert_eq!(circuit.library().name(), library.name());
    }

    #[test]
    fn reused_state_reproduces_a_fresh_run_exactly() {
        let netlist = generators::multiplier(3, 3);
        let ports = generators::MultiplierPorts::new(3, 3);
        let library = technology::cmos06();
        let circuit = CompiledCircuit::compile(&netlist, &library).unwrap();
        let mut stimulus = Stimulus::new(library.default_input_slew());
        for bit in ports.a_refs().iter().chain(ports.b_refs().iter()) {
            stimulus.set_initial(*bit, LogicLevel::Low);
        }
        stimulus.drive_bus_value(&ports.a_refs(), 0x5, Time::from_ns(1.0));
        stimulus.drive_bus_value(&ports.b_refs(), 0x6, Time::from_ns(1.0));

        let fresh = circuit.run(&stimulus, &SimulationConfig::ddm()).unwrap();
        let mut state = circuit.new_state();
        // Dirty the arena with an unrelated run, then repeat the stimulus.
        circuit
            .run_with(&mut state, &stimulus, &SimulationConfig::cdm())
            .unwrap();
        let reused = circuit
            .run_with(&mut state, &stimulus, &SimulationConfig::ddm())
            .unwrap();
        assert_eq!(fresh.stats(), reused.stats());
        for net in netlist.nets() {
            assert_eq!(
                fresh.waveform(net.name()),
                reused.waveform(net.name()),
                "waveform mismatch on {}",
                net.name()
            );
        }
    }

    #[test]
    fn run_both_models_shares_one_arena() {
        let netlist = generators::inverter_chain(6);
        let library = technology::cmos06();
        let circuit = CompiledCircuit::compile(&netlist, &library).unwrap();
        let (ddm, cdm) = circuit
            .run_both_models(&chain_stimulus(&library), &SimulationConfig::default())
            .unwrap();
        assert_eq!(ddm.model_kind(), Some(DelayModelKind::Degradation));
        assert_eq!(cdm.model_kind(), Some(DelayModelKind::Conventional));
        assert!(ddm.stats().events_processed > 0);
    }

    #[test]
    fn adapted_state_hops_circuits_and_reproduces_fresh_runs() {
        // One long-lived arena serves circuits of different shapes — the
        // worker-pool reuse pattern.  Bigger→smaller→bigger hops must all
        // produce results bit-identical to fresh arenas.
        let small = generators::inverter_chain(2);
        let big = generators::c17();
        let library = technology::cmos06();
        let small_circuit = CompiledCircuit::compile(&small, &library).unwrap();
        let big_circuit = CompiledCircuit::compile(&big, &library).unwrap();

        let mut big_stimulus = Stimulus::new(library.default_input_slew());
        for &input in big.primary_inputs() {
            big_stimulus.set_initial(big.net(input).name(), LogicLevel::Low);
            big_stimulus.drive(big.net(input).name(), Time::from_ns(1.0), LogicLevel::High);
        }
        let chain = chain_stimulus(&library);

        let fresh_big = big_circuit
            .run(&big_stimulus, &SimulationConfig::ddm())
            .unwrap();
        let fresh_small = small_circuit.run(&chain, &SimulationConfig::ddm()).unwrap();

        let mut arena = big_circuit.new_state();
        big_circuit
            .run_with(&mut arena, &big_stimulus, &SimulationConfig::cdm())
            .unwrap();
        // Shrink onto the small circuit mid-flight, then grow back.
        small_circuit.adapt_state(&mut arena);
        let hopped_small = small_circuit
            .run_with(&mut arena, &chain, &SimulationConfig::ddm())
            .unwrap();
        big_circuit.adapt_state(&mut arena);
        let hopped_big = big_circuit
            .run_with(&mut arena, &big_stimulus, &SimulationConfig::ddm())
            .unwrap();

        assert_eq!(fresh_small.stats(), hopped_small.stats());
        assert_eq!(fresh_big.stats(), hopped_big.stats());
        for net in big.nets() {
            assert_eq!(
                fresh_big.waveform(net.name()),
                hopped_big.waveform(net.name()),
                "waveform mismatch on {} after arena hops",
                net.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "SimState sized for")]
    fn mismatched_state_is_rejected() {
        let small = generators::inverter_chain(2);
        let big = generators::inverter_chain(5);
        let library = technology::cmos06();
        let small_circuit = CompiledCircuit::compile(&small, &library).unwrap();
        let big_circuit = CompiledCircuit::compile(&big, &library).unwrap();
        let mut state = small_circuit.new_state();
        let _ = big_circuit.run_with(
            &mut state,
            &chain_stimulus(&library),
            &SimulationConfig::ddm(),
        );
    }

    #[test]
    fn undriven_input_is_reported() {
        let netlist = generators::c17();
        let library = technology::cmos06();
        let circuit = CompiledCircuit::compile(&netlist, &library).unwrap();
        let err = circuit
            .run(
                &Stimulus::new(library.default_input_slew()),
                &SimulationConfig::ddm(),
            )
            .unwrap_err();
        assert!(matches!(err, SimulationError::UndrivenPrimaryInput { .. }));
    }
}
