//! The simulation event.
//!
//! Paper §3.1: *"Each time a transition crosses an input threshold, an event
//! is generated.  The simulation is performed in terms of events, taking
//! account of individual input thresholds."*  An [`Event`] therefore belongs
//! to exactly one gate input pin and carries what the gate evaluation needs
//! from the causing transition: the level the input is moving to and the
//! transition time of the causing ramp.

use halotis_core::{LogicLevel, PinRef, Time, TimeDelta};

/// One scheduled event: a gate input crossing its threshold.
///
/// `Event` is small and `Copy`; the queue stores events by
/// value in its slot arena (see [`crate::queue`]) rather than boxing them,
/// so scheduling and popping never allocate on the hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// The instant the causing transition crosses this input's threshold
    /// (`E` in the paper).
    pub time: Time,
    /// The gate input pin where the event occurs.
    pub pin: PinRef,
    /// The logic level the input assumes after the event.
    pub new_level: LogicLevel,
    /// The transition time of the causing ramp, used as `tau_in` by the
    /// delay model (eq. 3) when this event triggers an output transition.
    pub input_slew: TimeDelta,
}

impl Event {
    /// Creates an event.
    pub fn new(time: Time, pin: PinRef, new_level: LogicLevel, input_slew: TimeDelta) -> Self {
        Event {
            time,
            pin,
            new_level,
            input_slew,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_core::GateId;

    #[test]
    fn constructor_stores_all_fields() {
        let pin = PinRef::new(GateId::new(3), 1);
        let event = Event::new(
            Time::from_ns(2.0),
            pin,
            LogicLevel::High,
            TimeDelta::from_ps(150.0),
        );
        assert_eq!(event.time, Time::from_ns(2.0));
        assert_eq!(event.pin, pin);
        assert_eq!(event.new_level, LogicLevel::High);
        assert_eq!(event.input_slew, TimeDelta::from_ps(150.0));
    }
}
