//! The reusable per-run state arena of the compile-once core.
//!
//! A [`SimState`] owns every mutable structure one simulation run needs —
//! dense pin levels, per-gate output bookkeeping and the event queue — sized
//! once for a [`CompiledCircuit`](crate::CompiledCircuit) and reset in place
//! between runs, so repeated runs perform zero per-run allocation of the
//! static structures.  What (if anything) a run *retains* — waveforms,
//! activity counts, a VCD document — lives in the run's
//! [`SimObserver`](crate::SimObserver), not here.

use halotis_core::{LogicLevel, Time};
use halotis_delay::DelayModelKind;
use halotis_netlist::Netlist;

use crate::pins::PinMap;
use crate::queue::EventQueue;

/// Sentinel for "this gate has not produced an output ramp yet" in
/// [`SimState::last_output_start`]: no legitimate ramp starts at the
/// minimum representable instant.
pub(crate) const NO_PREVIOUS_RAMP: Time = Time::MIN;

/// The mutable arena one simulation run works in.
///
/// Obtain one from
/// [`CompiledCircuit::new_state`](crate::CompiledCircuit::new_state) and
/// pass it to [`run_with`](crate::CompiledCircuit::run_with) as often as
/// needed; each run resets the arena, so results are independent of what ran
/// before.
///
/// # Example
///
/// ```
/// use halotis_core::{LogicLevel, Time};
/// use halotis_netlist::{generators, technology};
/// use halotis_sim::{CompiledCircuit, SimulationConfig};
/// use halotis_waveform::Stimulus;
///
/// let netlist = generators::c17();
/// let library = technology::cmos06();
/// let circuit = CompiledCircuit::compile(&netlist, &library)?;
/// let mut state = circuit.new_state();
/// let mut stimulus = Stimulus::new(library.default_input_slew());
/// for &input in netlist.primary_inputs() {
///     stimulus.set_initial(netlist.net(input).name(), LogicLevel::Low);
/// }
/// // The same arena serves both model configurations.
/// let ddm = circuit.run_with(&mut state, &stimulus, &SimulationConfig::ddm())?;
/// let cdm = circuit.run_with(&mut state, &stimulus, &SimulationConfig::cdm())?;
/// assert_eq!(ddm.stats().events_processed, cdm.stats().events_processed);
/// # Ok::<(), halotis_sim::SimulationError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SimState {
    /// Current level of every gate input, by dense pin index.
    pub(crate) pin_levels: Vec<LogicLevel>,
    /// The level each gate's output is moving toward, by gate index.
    pub(crate) output_target: Vec<LogicLevel>,
    /// Start instant of each gate's previous output ramp, by gate index.
    /// [`NO_PREVIOUS_RAMP`] marks "no ramp yet" — a plain sentinel keeps the
    /// array at 8 bytes per gate where `Option<Time>` would double it.
    pub(crate) last_output_start: Vec<Time>,
    /// Net count of the circuit the arena was sized for (waveform retention
    /// itself lives in the run's [`SimObserver`](crate::SimObserver)).
    net_count: usize,
    /// The event queue, reset (allocation kept) between runs.
    pub(crate) queue: EventQueue,
    /// Per-gate built-in model kind resolved from the run's configuration
    /// (see [`DelayModel::kind_for`](halotis_delay::DelayModel::kind_for)),
    /// `None` where the gate needs dynamic dispatch.  Refilled at the start
    /// of every run — it depends on the configuration, not the circuit —
    /// into capacity this arena keeps.
    pub(crate) gate_model_kinds: Vec<Option<DelayModelKind>>,
}

impl SimState {
    /// Builds an arena for a circuit with the given table sizes.
    pub(crate) fn for_circuit(pin_count: usize, gate_count: usize, net_count: usize) -> Self {
        SimState {
            pin_levels: vec![LogicLevel::Unknown; pin_count],
            output_target: vec![LogicLevel::Unknown; gate_count],
            last_output_start: vec![NO_PREVIOUS_RAMP; gate_count],
            net_count,
            queue: EventQueue::new(pin_count),
            gate_model_kinds: Vec::with_capacity(gate_count),
        }
    }

    /// Number of dense pin slots the arena was sized for.
    pub fn pin_count(&self) -> usize {
        self.pin_levels.len()
    }

    /// Number of gate slots the arena was sized for.
    pub fn gate_count(&self) -> usize {
        self.output_target.len()
    }

    /// Number of nets of the circuit the arena was sized for.
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Resizes the arena for an edited circuit, keeping every untouched row
    /// in place — no reallocation happens unless a dimension actually grew
    /// past its capacity.  The pin arena never shrinks (freed pin blocks
    /// stay as holes); gate and net counts move in either direction.
    pub(crate) fn resize(&mut self, pin_count: usize, gate_count: usize, net_count: usize) {
        debug_assert!(
            pin_count >= self.pin_levels.len(),
            "pin arena never shrinks"
        );
        self.pin_levels.resize(pin_count, LogicLevel::Unknown);
        self.output_target.resize(gate_count, LogicLevel::Unknown);
        self.last_output_start.resize(gate_count, NO_PREVIOUS_RAMP);
        self.net_count = net_count;
        self.queue.resize_pins(pin_count);
    }

    /// Re-dimensions the arena for a possibly unrelated circuit, shrinking
    /// or growing freely and discarding all queued work.  This is the
    /// cross-circuit counterpart of [`resize`](Self::resize): `resize`
    /// follows one circuit's in-place edits (where the pin arena never
    /// shrinks because freed pin blocks stay as holes), while `reshape`
    /// retargets a long-lived worker arena at whatever circuit comes next.
    /// Every run resets the rows it reads, so a reshaped arena produces
    /// bit-identical results to a freshly allocated one.
    pub(crate) fn reshape(&mut self, pin_count: usize, gate_count: usize, net_count: usize) {
        self.pin_levels.clear();
        self.pin_levels.resize(pin_count, LogicLevel::Unknown);
        self.output_target.clear();
        self.output_target.resize(gate_count, LogicLevel::Unknown);
        self.last_output_start.clear();
        self.last_output_start.resize(gate_count, NO_PREVIOUS_RAMP);
        self.net_count = net_count;
        self.queue.reshape_pins(pin_count);
        self.gate_model_kinds.clear();
    }

    /// Panics with a descriptive message when the arena does not match the
    /// circuit about to use it.
    pub(crate) fn check_capacity(&self, pin_count: usize, gate_count: usize, net_count: usize) {
        assert!(
            self.pin_count() == pin_count
                && self.gate_count() == gate_count
                && self.net_count() == net_count,
            "SimState sized for {} pins / {} gates / {} nets used with a circuit of {} pins / {} gates / {} nets",
            self.pin_count(),
            self.gate_count(),
            self.net_count(),
            pin_count,
            gate_count,
            net_count,
        );
    }

    /// Re-initialises the arena from the initial net levels of a new run,
    /// keeping every allocation of the static structures.
    pub(crate) fn reset(
        &mut self,
        netlist: &Netlist,
        pins: &PinMap,
        initial_levels: &[LogicLevel],
    ) {
        for gate in netlist.gates() {
            let block = pins.gate_offset(gate.id());
            for (slot, &net) in self.pin_levels[block..].iter_mut().zip(gate.inputs()) {
                *slot = initial_levels[net.index()];
            }
            self.output_target[gate.id().index()] = initial_levels[gate.output().index()];
            self.last_output_start[gate.id().index()] = NO_PREVIOUS_RAMP;
        }
        self.queue.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_netlist::generators;

    #[test]
    fn arena_dimensions_match_the_circuit() {
        let netlist = generators::c17();
        let pins = PinMap::new(&netlist);
        let state = SimState::for_circuit(pins.len(), netlist.gate_count(), netlist.net_count());
        assert_eq!(state.pin_count(), 12);
        assert_eq!(state.gate_count(), netlist.gate_count());
        assert_eq!(state.net_count(), netlist.net_count());
        state.check_capacity(12, netlist.gate_count(), netlist.net_count());
    }

    #[test]
    fn reset_restores_initial_levels_everywhere() {
        let netlist = generators::inverter_chain(3);
        let pins = PinMap::new(&netlist);
        let mut state =
            SimState::for_circuit(pins.len(), netlist.gate_count(), netlist.net_count());
        let levels = vec![LogicLevel::High; netlist.net_count()];
        state.reset(&netlist, &pins, &levels);
        assert!(state.pin_levels.iter().all(|&l| l == LogicLevel::High));
        assert!(state.output_target.iter().all(|&l| l == LogicLevel::High));
        assert!(state
            .last_output_start
            .iter()
            .all(|&s| s == NO_PREVIOUS_RAMP));
    }
}
