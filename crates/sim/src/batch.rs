//! Parallel batch execution of many scenarios over one compiled circuit.
//!
//! Multi-run workloads — the Table 1/2 sweeps, the pulse-width scan,
//! Monte-Carlo stimulus sets — all share one shape: a fixed circuit, many
//! `(stimulus, config)` pairs.  [`BatchRunner`] executes such a sweep across
//! `std::thread::scope` workers that share one immutable
//! [`CompiledCircuit`]; each worker owns a single
//! [`SimState`] arena reused for every scenario it picks
//! up, so the whole batch performs one static preparation and `threads`
//! arena allocations, total.
//!
//! Results are deterministic: scenarios are independent, so the outcome
//! vector is identical whatever the thread count — only wall-clock time
//! changes.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use halotis_waveform::Stimulus;

use crate::compiled::CompiledCircuit;
use crate::config::SimulationConfig;
use crate::error::SimulationError;
use crate::observer::SimObserver;
use crate::result::SimulationResult;
use crate::state::SimState;
use crate::stats::SimulationStats;

/// One unit of batch work: a stimulus plus the configuration to run it
/// under, with a label for reporting.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Human-readable scenario label (e.g. `"fig6/ddm"` or `"width=300ps"`).
    pub label: String,
    /// The stimulus to apply.
    pub stimulus: Stimulus,
    /// The simulation configuration (delay model, limits).
    pub config: SimulationConfig,
}

impl Scenario {
    /// Creates a scenario.
    pub fn new(label: impl Into<String>, stimulus: Stimulus, config: SimulationConfig) -> Self {
        Scenario {
            label: label.into(),
            stimulus,
            config,
        }
    }

    /// The canonical DDM/CDM scenario pair for one stimulus: element 0 runs
    /// the degradation model (label `<label>/ddm`), element 1 the
    /// conventional model (label `<label>/cdm`), both deriving their other
    /// settings from `base`.
    ///
    /// Sweeps that compare the two models submit these pairs and read the
    /// report back in `chunks(2)` — keeping the pairing order defined here,
    /// in one place.
    pub fn both_models(
        label: impl AsRef<str>,
        stimulus: Stimulus,
        base: SimulationConfig,
    ) -> [Scenario; 2] {
        let ddm = base
            .clone()
            .model(halotis_delay::DelayModelKind::Degradation);
        let cdm = base.model(halotis_delay::DelayModelKind::Conventional);
        [
            Scenario::new(format!("{}/ddm", label.as_ref()), stimulus.clone(), ddm),
            Scenario::new(format!("{}/cdm", label.as_ref()), stimulus, cdm),
        ]
    }
}

/// The outcome of one scenario within a batch.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The scenario label, copied from the input.
    pub label: String,
    /// The simulation result, or the error that aborted this scenario.
    /// One failing scenario does not abort the rest of the batch.
    pub result: Result<SimulationResult, SimulationError>,
}

/// The outcome of one scenario of an observed batch run
/// ([`BatchRunner::run_observed`]): the populated per-scenario observer plus
/// the run statistics (or the error that aborted the scenario).
#[derive(Debug)]
pub struct ObservedOutcome<O> {
    /// The scenario label, copied from the input.
    pub label: String,
    /// The run statistics, or the error that aborted this scenario.  One
    /// failing scenario does not abort the rest of the batch.
    pub stats: Result<SimulationStats, SimulationError>,
    /// The observer that watched this scenario, carrying whatever it chose
    /// to retain.  On error it holds whatever was observed before the abort.
    pub observer: O,
}

/// Everything a batch run produces: per-scenario outcomes in submission
/// order plus aggregate statistics, generic over the outcome type
/// ([`ScenarioOutcome`] for [`BatchRunner::run`], [`ObservedOutcome`] for
/// [`BatchRunner::run_observed`]).
#[derive(Clone, Debug)]
pub struct BatchSummary<T> {
    outcomes: Vec<T>,
    totals: SimulationStats,
    succeeded: usize,
    wall_time: Duration,
    threads: usize,
}

/// The report of a full-result batch run ([`BatchRunner::run`]).
pub type BatchReport = BatchSummary<ScenarioOutcome>;

/// The report of an observed batch run ([`BatchRunner::run_observed`]).
pub type ObservedReport<O> = BatchSummary<ObservedOutcome<O>>;

impl<T> BatchSummary<T> {
    /// Per-scenario outcomes, in the order the scenarios were submitted.
    pub fn outcomes(&self) -> &[T] {
        &self.outcomes
    }

    /// Consumes the report, yielding the outcomes in submission order.
    pub fn into_outcomes(self) -> Vec<T> {
        self.outcomes
    }

    /// Statistics summed over every successful scenario.
    pub fn totals(&self) -> &SimulationStats {
        &self.totals
    }

    /// Number of scenarios in the batch.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// `true` when the batch contained no scenarios.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Number of scenarios that completed successfully.
    pub fn succeeded(&self) -> usize {
        self.succeeded
    }

    /// Number of scenarios that failed.
    pub fn failed(&self) -> usize {
        self.outcomes.len() - self.succeeded
    }

    /// Wall-clock time of the whole batch, including scheduling overhead.
    pub fn wall_time(&self) -> Duration {
        self.wall_time
    }

    /// Number of worker threads the batch actually used.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl BatchSummary<ScenarioOutcome> {
    /// The successful results, in submission order.
    pub fn results(&self) -> impl Iterator<Item = &SimulationResult> {
        self.outcomes
            .iter()
            .filter_map(|outcome| outcome.result.as_ref().ok())
    }
}

impl<O> BatchSummary<ObservedOutcome<O>> {
    /// The observers of the successful scenarios, in submission order.
    pub fn observers(&self) -> impl Iterator<Item = &O> {
        self.outcomes
            .iter()
            .filter(|outcome| outcome.stats.is_ok())
            .map(|outcome| &outcome.observer)
    }
}

/// Executes many scenarios against one [`CompiledCircuit`], in parallel.
///
/// # Example
///
/// ```
/// use halotis_core::{LogicLevel, Time};
/// use halotis_netlist::{generators, technology};
/// use halotis_sim::{BatchRunner, CompiledCircuit, Scenario, SimulationConfig};
/// use halotis_waveform::Stimulus;
///
/// let netlist = generators::inverter_chain(4);
/// let library = technology::cmos06();
/// let circuit = CompiledCircuit::compile(&netlist, &library)?;
///
/// let scenarios: Vec<Scenario> = (1..=8)
///     .map(|i| {
///         let mut stimulus = Stimulus::new(library.default_input_slew());
///         stimulus.set_initial("in", LogicLevel::Low);
///         stimulus.drive("in", Time::from_ns(i as f64), LogicLevel::High);
///         Scenario::new(format!("edge@{i}ns"), stimulus, SimulationConfig::ddm())
///     })
///     .collect();
///
/// let report = BatchRunner::new().run(&circuit, &scenarios);
/// assert_eq!(report.len(), 8);
/// assert_eq!(report.failed(), 0);
/// assert!(report.totals().events_processed > 0);
/// # Ok::<(), halotis_sim::SimulationError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BatchRunner {
    threads: NonZeroUsize,
}

impl BatchRunner {
    /// A runner using every hardware thread the platform reports (at least
    /// one).
    pub fn new() -> Self {
        BatchRunner {
            threads: std::thread::available_parallelism()
                .unwrap_or(NonZeroUsize::new(1).expect("1 is non-zero")),
        }
    }

    /// A runner with an explicit worker count; `0` is clamped to `1`.
    pub fn with_threads(threads: usize) -> Self {
        BatchRunner {
            threads: NonZeroUsize::new(threads.max(1)).expect("clamped to at least 1"),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Runs every scenario through a per-scenario [`SimObserver`], collecting
    /// the observers (and run statistics) in submission order.
    ///
    /// This is the no-waveform batch path: nothing is recorded beyond what
    /// each observer keeps.  `make_observer` is called once per scenario
    /// (with its index and the scenario) on the worker thread about to run
    /// it; the populated observer is handed back in the report.
    ///
    /// # Example: glitch statistics for thousands of stimuli, no waveforms
    ///
    /// ```
    /// use halotis_core::{LogicLevel, Time};
    /// use halotis_netlist::{generators, technology};
    /// use halotis_sim::{ActivityCounter, BatchRunner, CompiledCircuit, Scenario, SimulationConfig};
    /// use halotis_waveform::Stimulus;
    ///
    /// let netlist = generators::inverter_chain(4);
    /// let library = technology::cmos06();
    /// let circuit = CompiledCircuit::compile(&netlist, &library)?;
    /// let scenarios: Vec<Scenario> = (1..=16)
    ///     .map(|i| {
    ///         let mut stimulus = Stimulus::new(library.default_input_slew());
    ///         stimulus.set_initial("in", LogicLevel::Low);
    ///         stimulus.drive("in", Time::from_ns(i as f64), LogicLevel::High);
    ///         Scenario::new(format!("edge@{i}ns"), stimulus, SimulationConfig::ddm())
    ///     })
    ///     .collect();
    ///
    /// let report = BatchRunner::new().run_observed(&circuit, &scenarios, |_, _| ActivityCounter::new());
    /// assert_eq!(report.len(), 16);
    /// let out = netlist.net_id("out").unwrap();
    /// for outcome in report.outcomes() {
    ///     assert!(outcome.stats.is_ok());
    ///     assert_eq!(outcome.observer.transitions(out), 1);
    /// }
    /// # Ok::<(), halotis_sim::SimulationError>(())
    /// ```
    pub fn run_observed<O, F>(
        &self,
        circuit: &CompiledCircuit<'_>,
        scenarios: &[Scenario],
        make_observer: F,
    ) -> ObservedReport<O>
    where
        O: SimObserver + Send,
        F: Fn(usize, &Scenario) -> O + Sync,
    {
        self.execute(
            scenarios,
            |state, index, scenario| {
                let mut observer = make_observer(index, scenario);
                let stats = circuit.run_observed(
                    state,
                    &scenario.stimulus,
                    &scenario.config,
                    &mut observer,
                );
                ObservedOutcome {
                    label: scenario.label.clone(),
                    stats,
                    observer,
                }
            },
            |outcome| outcome.stats.as_ref().ok(),
            || circuit.new_state(),
        )
    }

    /// Runs every scenario and collects outcomes in submission order.
    ///
    /// Workers pull scenarios from a shared cursor, so an expensive scenario
    /// does not serialise the rest of the sweep behind it.  Each worker
    /// reuses one [`SimState`] arena across all scenarios
    /// it executes.  Failures are recorded per scenario and never abort the
    /// batch.
    pub fn run(&self, circuit: &CompiledCircuit<'_>, scenarios: &[Scenario]) -> BatchReport {
        self.execute(
            scenarios,
            |state, _, scenario| ScenarioOutcome {
                label: scenario.label.clone(),
                result: circuit.run_with(state, &scenario.stimulus, &scenario.config),
            },
            |outcome| outcome.result.as_ref().ok().map(SimulationResult::stats),
            || circuit.new_state(),
        )
    }

    /// The work-stealing driver shared by [`run`](BatchRunner::run) and
    /// [`run_observed`](BatchRunner::run_observed): workers pull scenario
    /// indices from an atomic cursor, each reusing one arena (from
    /// `new_state`) across every scenario it executes, and `job` outcomes
    /// land in submission order; `stats_of` extracts the per-scenario
    /// statistics (or `None` for a failed scenario) for the aggregates.
    fn execute<T, F, S, N>(
        &self,
        scenarios: &[Scenario],
        job: F,
        stats_of: S,
        new_state: N,
    ) -> BatchSummary<T>
    where
        T: Send,
        F: Fn(&mut SimState, usize, &Scenario) -> T + Sync,
        S: Fn(&T) -> Option<&SimulationStats>,
        N: Fn() -> SimState + Sync,
    {
        let started = Instant::now();
        let threads = self.threads.get().min(scenarios.len()).max(1);

        // Single-worker batches run inline: no thread spawn, no mutex —
        // spawning a scoped thread and locking per scenario costs more than
        // an entire small-circuit scenario, and single-thread is the
        // reference configuration for deterministic timing measurements.
        if threads == 1 {
            let mut state = new_state();
            let outcomes: Vec<T> = scenarios
                .iter()
                .enumerate()
                .map(|(index, scenario)| job(&mut state, index, scenario))
                .collect();
            return Self::summarise(outcomes, stats_of, started, threads);
        }

        let cursor = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..scenarios.len()).map(|_| None).collect());

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut state = new_state();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(scenario) = scenarios.get(index) else {
                            break;
                        };
                        let outcome = job(&mut state, index, scenario);
                        slots.lock().expect("no worker panicked holding the lock")[index] =
                            Some(outcome);
                    }
                });
            }
        });

        let outcomes: Vec<T> = slots
            .into_inner()
            .expect("all workers joined")
            .into_iter()
            .map(|slot| slot.expect("every index below the cursor was filled"))
            .collect();
        Self::summarise(outcomes, stats_of, started, threads)
    }

    /// Folds per-scenario outcomes into the aggregate report.
    fn summarise<T, S>(
        outcomes: Vec<T>,
        stats_of: S,
        started: Instant,
        threads: usize,
    ) -> BatchSummary<T>
    where
        S: Fn(&T) -> Option<&SimulationStats>,
    {
        let mut totals = SimulationStats::default();
        let mut succeeded = 0;
        for outcome in &outcomes {
            if let Some(stats) = stats_of(outcome) {
                totals.merge(stats);
                succeeded += 1;
            }
        }
        BatchSummary {
            outcomes,
            totals,
            succeeded,
            wall_time: started.elapsed(),
            threads,
        }
    }
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_core::{LogicLevel, Time};
    use halotis_netlist::{generators, technology};

    fn chain_scenarios(library: &halotis_netlist::Library, count: usize) -> Vec<Scenario> {
        (0..count)
            .map(|i| {
                let mut stimulus = Stimulus::new(library.default_input_slew());
                stimulus.set_initial("in", LogicLevel::Low);
                stimulus.drive("in", Time::from_ns(1.0 + 0.25 * i as f64), LogicLevel::High);
                Scenario::new(format!("s{i}"), stimulus, SimulationConfig::ddm())
            })
            .collect()
    }

    #[test]
    fn outcomes_preserve_submission_order_and_labels() {
        let netlist = generators::inverter_chain(3);
        let library = technology::cmos06();
        let circuit = CompiledCircuit::compile(&netlist, &library).unwrap();
        let scenarios = chain_scenarios(&library, 7);
        let report = BatchRunner::with_threads(3).run(&circuit, &scenarios);
        assert_eq!(report.len(), 7);
        assert!(!report.is_empty());
        assert_eq!(report.failed(), 0);
        assert_eq!(report.succeeded(), 7);
        assert_eq!(report.threads(), 3);
        for (index, outcome) in report.outcomes().iter().enumerate() {
            assert_eq!(outcome.label, format!("s{index}"));
        }
        assert_eq!(report.results().count(), 7);
    }

    #[test]
    fn parallel_results_match_sequential_results() {
        let netlist = generators::multiplier(3, 3);
        let ports = generators::MultiplierPorts::new(3, 3);
        let library = technology::cmos06();
        let circuit = CompiledCircuit::compile(&netlist, &library).unwrap();
        let scenarios: Vec<Scenario> = (0u64..12)
            .map(|i| {
                let mut stimulus = Stimulus::new(library.default_input_slew());
                for bit in ports.a_refs().iter().chain(ports.b_refs().iter()) {
                    stimulus.set_initial(*bit, LogicLevel::Low);
                }
                stimulus.drive_bus_value(&ports.a_refs(), i % 8, Time::from_ns(1.0));
                stimulus.drive_bus_value(&ports.b_refs(), (i * 3) % 8, Time::from_ns(1.0));
                Scenario::new(format!("{i}"), stimulus, SimulationConfig::ddm())
            })
            .collect();
        let sequential = BatchRunner::with_threads(1).run(&circuit, &scenarios);
        let parallel = BatchRunner::with_threads(4).run(&circuit, &scenarios);
        assert_eq!(sequential.totals(), parallel.totals());
        for (a, b) in sequential.outcomes().iter().zip(parallel.outcomes()) {
            let (a, b) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert_eq!(a.stats(), b.stats());
            for (name, waveform) in a.waveforms().iter() {
                assert_eq!(Some(waveform), b.waveform(name));
            }
        }
    }

    #[test]
    fn one_failing_scenario_does_not_abort_the_batch() {
        let netlist = generators::inverter_chain(2);
        let library = technology::cmos06();
        let circuit = CompiledCircuit::compile(&netlist, &library).unwrap();
        let mut scenarios = chain_scenarios(&library, 3);
        // An empty stimulus leaves the primary input undriven.
        scenarios.insert(
            1,
            Scenario::new(
                "broken",
                Stimulus::new(library.default_input_slew()),
                SimulationConfig::ddm(),
            ),
        );
        let report = BatchRunner::with_threads(2).run(&circuit, &scenarios);
        assert_eq!(report.len(), 4);
        assert_eq!(report.failed(), 1);
        assert_eq!(report.succeeded(), 3);
        assert!(matches!(
            report.outcomes()[1].result,
            Err(SimulationError::UndrivenPrimaryInput { .. })
        ));
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let netlist = generators::inverter_chain(1);
        let library = technology::cmos06();
        let circuit = CompiledCircuit::compile(&netlist, &library).unwrap();
        let report = BatchRunner::new().run(&circuit, &[]);
        assert!(report.is_empty());
        assert_eq!(report.totals(), &SimulationStats::default());
    }

    #[test]
    fn thread_count_clamps() {
        assert_eq!(BatchRunner::with_threads(0).threads(), 1);
        assert!(BatchRunner::default().threads() >= 1);
    }
}
