//! Simulation configuration.

use halotis_core::{Time, TimeDelta};
use halotis_delay::DelayModelKind;

/// Knobs controlling one simulation run.
///
/// # Example
///
/// ```
/// use halotis_delay::DelayModelKind;
/// use halotis_sim::SimulationConfig;
///
/// let config = SimulationConfig::ddm();
/// assert_eq!(config.model, DelayModelKind::Degradation);
/// let cdm = SimulationConfig::cdm().with_settle_margin_ns(10.0);
/// assert_eq!(cdm.model, DelayModelKind::Conventional);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimulationConfig {
    /// Which delay model the engine applies (the paper's HALOTIS-DDM vs
    /// HALOTIS-CDM configurations).
    pub model: DelayModelKind,
    /// Hard stop: no event later than this instant is processed.  `None`
    /// lets the simulation run until the event queue drains.
    pub time_limit: Option<Time>,
    /// Safety valve against runaway event storms (e.g. a mis-characterised
    /// library producing zero-delay oscillation).  The run fails with
    /// [`SimulationError::EventBudgetExhausted`] when exceeded.
    ///
    /// [`SimulationError::EventBudgetExhausted`]: crate::SimulationError::EventBudgetExhausted
    pub max_events: usize,
    /// Extra quiet time appended after the last stimulus edge when deriving
    /// the default observation window.
    pub settle_margin: TimeDelta,
}

impl SimulationConfig {
    /// Configuration using the degradation delay model (HALOTIS-DDM).
    pub fn ddm() -> Self {
        SimulationConfig {
            model: DelayModelKind::Degradation,
            ..Self::default()
        }
    }

    /// Configuration using the conventional delay model (HALOTIS-CDM).
    pub fn cdm() -> Self {
        SimulationConfig {
            model: DelayModelKind::Conventional,
            ..Self::default()
        }
    }

    /// Configuration for an explicit delay-model kind.
    pub fn with_model(model: DelayModelKind) -> Self {
        SimulationConfig {
            model,
            ..Self::default()
        }
    }

    /// Replaces the settle margin (given in nanoseconds).
    pub fn with_settle_margin_ns(mut self, margin_ns: f64) -> Self {
        self.settle_margin = TimeDelta::from_ns(margin_ns);
        self
    }

    /// Replaces the event budget.
    pub fn with_max_events(mut self, max_events: usize) -> Self {
        self.max_events = max_events;
        self
    }

    /// Replaces the time limit.
    pub fn with_time_limit(mut self, limit: Time) -> Self {
        self.time_limit = Some(limit);
        self
    }
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            model: DelayModelKind::Degradation,
            time_limit: None,
            max_events: 10_000_000,
            settle_margin: TimeDelta::from_ns(5.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_select_the_right_model() {
        assert_eq!(SimulationConfig::ddm().model, DelayModelKind::Degradation);
        assert_eq!(SimulationConfig::cdm().model, DelayModelKind::Conventional);
        assert_eq!(
            SimulationConfig::with_model(DelayModelKind::Conventional).model,
            DelayModelKind::Conventional
        );
        assert_eq!(
            SimulationConfig::default().model,
            DelayModelKind::Degradation
        );
    }

    #[test]
    fn builder_style_updates() {
        let config = SimulationConfig::ddm()
            .with_settle_margin_ns(2.5)
            .with_max_events(100)
            .with_time_limit(Time::from_ns(50.0));
        assert_eq!(config.settle_margin, TimeDelta::from_ns(2.5));
        assert_eq!(config.max_events, 100);
        assert_eq!(config.time_limit, Some(Time::from_ns(50.0)));
    }
}
