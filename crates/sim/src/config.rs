//! Simulation configuration.

use halotis_core::{Time, TimeDelta};
use halotis_delay::{DelayModelHandle, DelayModelKind};

/// Knobs controlling one simulation run.
///
/// The configuration is built combinator-style: start from a preset
/// ([`ddm`](SimulationConfig::ddm), [`cdm`](SimulationConfig::cdm) or
/// [`default`](SimulationConfig::default)) and chain `with_*` /
/// [`model`](SimulationConfig::model) calls.  Cloning is cheap — the delay
/// model is held behind a shared [`DelayModelHandle`].
///
/// # Example
///
/// ```
/// use halotis_delay::{Conventional, DelayModelHandle, DelayModelKind, PerCellOverride};
/// use halotis_sim::SimulationConfig;
///
/// let config = SimulationConfig::ddm();
/// assert_eq!(config.model, DelayModelKind::Degradation);
///
/// let cdm = SimulationConfig::cdm().with_settle_margin_ns(10.0);
/// assert_eq!(cdm.model, DelayModelKind::Conventional);
///
/// // Any `DelayModel` implementation plugs in through the same knob.
/// let mixed = SimulationConfig::default()
///     .model(DelayModelHandle::new(PerCellOverride::new(Conventional)));
/// assert_eq!(mixed.model.label(), "CDM+overrides");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SimulationConfig {
    /// The delay model the engine applies to every gate evaluation.  The
    /// paper's HALOTIS-DDM / HALOTIS-CDM configurations are the two built-in
    /// handles; any [`DelayModel`](halotis_delay::DelayModel) implementation
    /// can be plugged in.
    pub model: DelayModelHandle,
    /// Hard stop: no event later than this instant is processed.  `None`
    /// lets the simulation run until the event queue drains.
    pub time_limit: Option<Time>,
    /// Safety valve against runaway event storms (e.g. a mis-characterised
    /// library producing zero-delay oscillation).  The run fails with
    /// [`SimulationError::EventBudgetExhausted`] when exceeded.
    ///
    /// [`SimulationError::EventBudgetExhausted`]: crate::SimulationError::EventBudgetExhausted
    pub max_events: usize,
    /// Extra quiet time appended after the last stimulus edge when deriving
    /// the default observation window.
    pub settle_margin: TimeDelta,
}

impl SimulationConfig {
    /// Configuration using the degradation delay model (HALOTIS-DDM).
    pub fn ddm() -> Self {
        Self::default().model(DelayModelKind::Degradation)
    }

    /// Configuration using the conventional delay model (HALOTIS-CDM).
    pub fn cdm() -> Self {
        Self::default().model(DelayModelKind::Conventional)
    }

    /// Replaces the delay model.
    ///
    /// Accepts anything convertible into a [`DelayModelHandle`]: a
    /// [`DelayModelKind`], the built-in model structs, a composite, or a
    /// handle wrapping a custom implementation.
    pub fn model(mut self, model: impl Into<DelayModelHandle>) -> Self {
        self.model = model.into();
        self
    }

    /// Replaces the settle margin (given in nanoseconds).
    pub fn with_settle_margin_ns(mut self, margin_ns: f64) -> Self {
        self.settle_margin = TimeDelta::from_ns(margin_ns);
        self
    }

    /// Replaces the event budget.
    pub fn with_max_events(mut self, max_events: usize) -> Self {
        self.max_events = max_events;
        self
    }

    /// Replaces the time limit.
    pub fn with_time_limit(mut self, limit: Time) -> Self {
        self.time_limit = Some(limit);
        self
    }
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            model: DelayModelHandle::default(),
            time_limit: None,
            max_events: 10_000_000,
            settle_margin: TimeDelta::from_ns(5.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_delay::{Conventional, Degradation, DelayModelHandle};

    #[test]
    fn presets_select_the_right_model() {
        assert_eq!(SimulationConfig::ddm().model, DelayModelKind::Degradation);
        assert_eq!(SimulationConfig::cdm().model, DelayModelKind::Conventional);
        assert_eq!(
            SimulationConfig::default().model,
            DelayModelKind::Degradation
        );
    }

    #[test]
    fn model_combinator_accepts_kinds_structs_and_handles() {
        let from_kind = SimulationConfig::default().model(DelayModelKind::Conventional);
        let from_struct = SimulationConfig::default().model(Conventional);
        let from_handle = SimulationConfig::default().model(DelayModelHandle::new(Conventional));
        assert_eq!(from_kind, from_struct);
        assert_eq!(from_struct, from_handle);
        assert_ne!(from_kind, SimulationConfig::default().model(Degradation));
    }

    #[test]
    fn builder_style_updates() {
        let config = SimulationConfig::ddm()
            .with_settle_margin_ns(2.5)
            .with_max_events(100)
            .with_time_limit(Time::from_ns(50.0));
        assert_eq!(config.settle_margin, TimeDelta::from_ns(2.5));
        assert_eq!(config.max_events, 100);
        assert_eq!(config.time_limit, Some(Time::from_ns(50.0)));
        // Combinators preserve the model.
        assert_eq!(config.model, DelayModelKind::Degradation);
    }
}
