//! A bucketed time wheel (calendar queue) with serial-numbered lazy
//! cancellation — the priority-queue core shared by the HALOTIS
//! [`EventQueue`](crate::queue::EventQueue) and the classical simulator.
//!
//! Event-driven gate-level simulation produces timestamps that cluster at
//! gate-delay granularity (hundreds of picoseconds): almost every insert
//! lands within a few bucket widths of the current simulation time.  A
//! calendar queue exploits that distribution — insert is an array index and
//! a list link, pop is a linear scan of one small bucket — where a binary
//! heap pays `O(log n)` pointer-chasing comparisons on both operations.
//!
//! Layout:
//!
//! * every entry lives in one shared **slot arena**; buckets are intrusive
//!   singly-linked lists threaded through the arena and freed slots go to a
//!   free list, so the steady state allocates nothing and the working set
//!   stays as small as the number of in-flight events,
//! * time is quantised into *days* of `2^shift` femtoseconds; a power-of-two
//!   ring of bucket heads covers the window `[cursor, cursor + buckets)`
//!   days,
//! * when the cursor arrives at a bucket its list is *gathered* once into a
//!   contiguous drain buffer, sorted descending so pops take the earliest
//!   entry off the back in `O(1)` — the bucket list is never rescanned,
//! * entries beyond the window go to a *spill* min-heap (`O(log n)` insert,
//!   so a long monotone stimulus schedule spanning many windows stays
//!   `O(n log n)` instead of degrading quadratically) and migrate into the
//!   drain when the cursor reaches their day,
//! * entries at or before the cursor (the engine schedules at the current
//!   instant, never into the past of the *popped* horizon, but an earlier
//!   time than the cursor's day start is legal) are inserted directly into
//!   the drain at their sorted position, keeping their true timestamp,
//! * cancellation is lazy via a serial-indexed bitset: every insert is
//!   numbered, [`cancel`](TimeWheel::cancel) flips one bit, and cancelled
//!   entries are unlinked when a scan encounters them.  This replaces the
//!   `HashSet<u64>` of the original implementation — no hashing on the hot
//!   path and an `O(words)` [`reset`](TimeWheel::reset).
//!
//! Ordering contract (load-bearing for bit-identical simulation results):
//! entries pop in ascending `(time, serial)` order, i.e. equal-time entries
//! pop in insertion order, and [`reset`](TimeWheel::reset) restarts serial
//! numbering at zero so a reused wheel is indistinguishable from a fresh
//! one.

use halotis_core::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Default bucket width exponent: `2^18` fs = 262.144 ps, on the order of a
/// single gate delay of the shipped 0.6 µm library (300–800 ps), so the
/// events of one delay generation land in a handful of adjacent buckets.
pub const DEFAULT_SHIFT: u32 = 18;

/// Default ring size: 512 buckets × 262 ps ≈ 134 ns of look-ahead, which
/// covers entire corpus stimuli without touching the spill list.
pub const DEFAULT_BUCKETS: usize = 512;

/// Null link of the intrusive bucket lists.
const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct WheelSlot<T> {
    time: Time,
    serial: u64,
    payload: T,
    /// Next slot in the same bucket list, or [`NIL`].
    next: u32,
}

/// A calendar queue over `(Time, insertion serial)` keys carrying a `Copy`
/// payload per entry.
///
/// # Example
///
/// ```
/// use halotis_core::Time;
/// use halotis_sim::wheel::TimeWheel;
///
/// let mut wheel: TimeWheel<&str> = TimeWheel::new();
/// wheel.push(Time::from_ns(2.0), "late");
/// let early = wheel.push(Time::from_ns(1.0), "early");
/// let doomed = wheel.push(Time::from_ns(1.5), "cancelled");
/// wheel.cancel(doomed);
/// assert_eq!(wheel.len(), 2);
/// assert_eq!(wheel.pop(), Some((Time::from_ns(1.0), early, "early")));
/// assert_eq!(wheel.pop().map(|(_, _, p)| p), Some("late"));
/// assert_eq!(wheel.pop(), None);
/// ```
#[derive(Clone, Debug)]
pub struct TimeWheel<T> {
    /// The slot arena every entry lives in; bucket lists and the free list
    /// are threaded through it by index.
    slots: Vec<WheelSlot<T>>,
    /// Recycled arena indices, reused before the arena grows.
    free: Vec<u32>,
    /// Ring of bucket list heads; bucket `day & mask` holds day's entries.
    heads: Vec<u32>,
    /// One bit per ring bucket, set exactly when that bucket's list is
    /// non-empty — lets the cursor jump over empty buckets instead of
    /// probing them one day at a time.
    occupancy: Vec<u64>,
    /// Bucket width is `2^shift` femtoseconds.
    shift: u32,
    /// `heads.len() - 1` (the ring size is a power of two).
    mask: i64,
    /// The day currently being drained.  The cursor bucket's list is always
    /// empty: its entries were gathered into `drain` when the cursor
    /// arrived, and inserts with `day <= cursor` go straight to `drain`.
    cursor_day: i64,
    /// The cursor day's entries as `(time, serial, slot index)`, sorted
    /// descending by `(time, serial)` so the earliest pops off the back in
    /// `O(1)`.  Filled once per cursor position by gathering the bucket
    /// list; entries may still be cancelled while here (skipped on pop).
    drain: Vec<(Time, u64, u32)>,
    /// Entries beyond the ring window as `(time, serial, slot index)` in a
    /// min-heap.  This is the cold path — only stimulus schedules reaching
    /// further than the window land here — so heap comparisons are fine,
    /// and the `O(log n)` insert keeps a monotone far-future stream from
    /// turning quadratic the way a sorted vector would.
    spill: BinaryHeap<Reverse<(Time, u64, u32)>>,
    /// Dead-serial bitset (popped or cancelled), indexed by serial.  A set
    /// bit means the serial will never pop; entries still physically in a
    /// bucket with their bit set are unlinked lazily when a scan meets them.
    dead: Vec<u64>,
    /// Next insertion serial; equal-time entries pop in serial order.
    next_serial: u64,
    /// Entries physically linked into ring bucket lists (live or
    /// cancelled); the drain buffer is not counted.
    in_buckets: usize,
    /// Live (not cancelled, not popped) entries, ring and spill together.
    live: usize,
}

impl<T: Copy> TimeWheel<T> {
    /// Creates a wheel with the default geometry
    /// ([`DEFAULT_SHIFT`]/[`DEFAULT_BUCKETS`]).
    pub fn new() -> Self {
        Self::with_geometry(DEFAULT_SHIFT, DEFAULT_BUCKETS)
    }

    /// Creates a wheel with `2^shift`-fs buckets and a ring of
    /// `bucket_count` buckets.
    ///
    /// # Panics
    ///
    /// Panics unless `bucket_count` is a power of two and `shift < 63`.
    pub fn with_geometry(shift: u32, bucket_count: usize) -> Self {
        assert!(
            bucket_count.is_power_of_two(),
            "bucket count must be a power of two, got {bucket_count}"
        );
        assert!(shift < 63, "shift {shift} leaves no time resolution");
        TimeWheel {
            slots: Vec::new(),
            free: Vec::new(),
            heads: vec![NIL; bucket_count],
            occupancy: vec![0; bucket_count.div_ceil(64)],
            shift,
            mask: bucket_count as i64 - 1,
            cursor_day: 0,
            drain: Vec::new(),
            spill: BinaryHeap::new(),
            dead: Vec::new(),
            next_serial: 0,
            in_buckets: 0,
            live: 0,
        }
    }

    /// The day (bucket-width quantum) a timestamp belongs to.  Arithmetic
    /// shift right floors correctly for negative timestamps.
    #[inline]
    fn day_of(&self, time: Time) -> i64 {
        time.as_fs() >> self.shift
    }

    #[inline]
    fn is_dead(dead: &[u64], serial: u64) -> bool {
        dead[(serial >> 6) as usize] & (1u64 << (serial & 63)) != 0
    }

    /// Takes a slot from the free list or grows the arena.
    #[inline]
    fn alloc_slot(&mut self, time: Time, serial: u64, payload: T) -> u32 {
        let slot = WheelSlot {
            time,
            serial,
            payload,
            next: NIL,
        };
        match self.free.pop() {
            Some(index) => {
                self.slots[index as usize] = slot;
                index
            }
            None => {
                self.slots.push(slot);
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Links an arena slot at the head of a bucket list (within-bucket order
    /// is irrelevant: the list is sorted when gathered into the drain).
    #[inline]
    fn link_into_bucket(&mut self, bucket: usize, index: u32) {
        self.slots[index as usize].next = self.heads[bucket];
        self.heads[bucket] = index;
        self.occupancy[bucket >> 6] |= 1u64 << (bucket & 63);
        self.in_buckets += 1;
    }

    /// Clears a bucket's occupancy bit (call after its list went empty).
    #[inline]
    fn mark_bucket_empty(&mut self, bucket: usize) {
        self.occupancy[bucket >> 6] &= !(1u64 << (bucket & 63));
    }

    /// Days from the cursor to the next non-empty ring bucket (circular
    /// scan of the occupancy bitmap; the caller guarantees `in_buckets > 0`
    /// and an empty cursor bucket).
    fn next_occupied_offset(&self) -> i64 {
        let bucket_count = self.heads.len();
        let cursor_bucket = (self.cursor_day & self.mask) as usize;
        let start = (cursor_bucket + 1) & (bucket_count - 1);
        let word_count = self.occupancy.len();
        let mut word = start >> 6;
        let mut bits = self.occupancy[word] & (u64::MAX << (start & 63));
        for _ in 0..=word_count {
            if bits != 0 {
                let found = ((word << 6) + bits.trailing_zeros() as usize) & (bucket_count - 1);
                let offset = (found + bucket_count - cursor_bucket) & (bucket_count - 1);
                return offset.max(1) as i64;
            }
            word = (word + 1) % word_count;
            bits = self.occupancy[word];
        }
        unreachable!("in_buckets > 0 guarantees an occupied bucket");
    }

    /// Inserts an entry and returns its serial number (the equal-time
    /// tie-break key, usable with [`cancel`](TimeWheel::cancel)).
    pub fn push(&mut self, time: Time, payload: T) -> u64 {
        let serial = self.next_serial;
        self.next_serial += 1;
        if (serial >> 6) as usize >= self.dead.len() {
            self.dead.push(0);
        }
        // An empty wheel follows the insert wherever it lands, so a run
        // whose events jump backwards between generations (pop everything,
        // schedule earlier) never clamps.
        if self.in_buckets == 0 && self.spill.is_empty() && self.drain.is_empty() {
            self.cursor_day = self.day_of(time);
        }
        let offset = self.day_of(time) - self.cursor_day;
        let index = self.alloc_slot(time, serial, payload);
        if offset > self.mask {
            self.spill.push(Reverse((time, serial, index)));
        } else if offset <= 0 {
            // At or before the cursor: the cursor bucket's list was already
            // gathered, so join the sorted drain at the true timestamp's
            // position.
            let key = (time, serial);
            let at = self.drain.partition_point(|&(t, s, _)| (t, s) > key);
            self.drain.insert(at, (time, serial, index));
        } else {
            self.link_into_bucket(((self.cursor_day + offset) & self.mask) as usize, index);
        }
        self.live += 1;
        serial
    }

    /// Cancels an entry by serial.  The entry stays in its bucket until a
    /// scan unlinks it (lazy deletion).
    ///
    /// Returns `true` when the serial was live, `false` when it was already
    /// popped or cancelled — in which case this is a no-op, mirroring the
    /// tolerance of a `HashSet`-based tombstone (the classical engine's
    /// pending markers can legitimately outlive their commit).
    pub fn cancel(&mut self, serial: u64) -> bool {
        let word = (serial >> 6) as usize;
        let bit = 1u64 << (serial & 63);
        if self.dead[word] & bit != 0 {
            return false;
        }
        self.dead[word] |= bit;
        self.live -= 1;
        true
    }

    /// Moves the cursor bucket's list into the drain buffer: cancelled
    /// entries are freed, survivors are sorted descending by
    /// `(time, serial)` so the earliest pops off the back.  Called exactly
    /// once per cursor position (the drain is empty at that moment); every
    /// entry here has `day == cursor_day` — future-rotation aliasing is
    /// impossible because the cursor visits each bucket exactly once per
    /// window and inserts never target a bucket the cursor has already
    /// passed in the current rotation.
    fn gather_cursor_bucket(&mut self) {
        let bucket = (self.cursor_day & self.mask) as usize;
        let mut current = self.heads[bucket];
        if current == NIL {
            return;
        }
        self.heads[bucket] = NIL;
        self.mark_bucket_empty(bucket);
        while current != NIL {
            let slot = &self.slots[current as usize];
            let next = slot.next;
            self.in_buckets -= 1;
            if Self::is_dead(&self.dead, slot.serial) {
                self.free.push(current);
            } else {
                self.drain.push((slot.time, slot.serial, current));
            }
            current = next;
        }
        self.drain
            .sort_unstable_by(|&(at, aserial, _), &(bt, bserial, _)| {
                (bt, bserial).cmp(&(at, aserial))
            });
    }

    /// Removes and returns the earliest live entry as
    /// `(time, serial, payload)`, discarding any cancelled entries
    /// encountered on the way.
    pub fn pop(&mut self) -> Option<(Time, u64, T)> {
        if self.live == 0 {
            return None;
        }
        loop {
            // Migrate spill entries that are due at (or before — the spill
            // can only hold future days, but the cursor may have jumped)
            // the cursor into the drain at their sorted position.
            while let Some(&Reverse((time, serial, index))) = self.spill.peek() {
                if self.day_of(time) > self.cursor_day {
                    break;
                }
                self.spill.pop();
                if Self::is_dead(&self.dead, serial) {
                    self.free.push(index);
                    continue;
                }
                let key = (time, serial);
                let at = self.drain.partition_point(|&(t, s, _)| (t, s) > key);
                self.drain.insert(at, (time, serial, index));
            }

            // The earliest entry of the cursor day sits at the back of the
            // drain; cancelled entries are discarded as they surface.
            while let Some((time, serial, index)) = self.drain.pop() {
                self.free.push(index);
                if Self::is_dead(&self.dead, serial) {
                    continue;
                }
                self.live -= 1;
                // Popped serials join the dead set so a late cancel() on
                // them is a detectable no-op.
                self.dead[(serial >> 6) as usize] |= 1u64 << (serial & 63);
                let payload = self.slots[index as usize].payload;
                return Some((time, serial, payload));
            }

            // Nothing live at this cursor position: advance.  With an empty
            // ring, jump straight to the earliest spill day; otherwise jump
            // to the next occupied bucket, capped at the earliest spill day
            // so due spill entries still migrate in time order.
            if self.in_buckets == 0 {
                let &Reverse((time, _, _)) =
                    self.spill.peek().expect("live > 0 with an empty ring");
                self.cursor_day = self.day_of(time);
            } else {
                let mut step = self.next_occupied_offset();
                if let Some(&Reverse((time, _, _))) = self.spill.peek() {
                    step = step.min(self.day_of(time) - self.cursor_day);
                }
                self.cursor_day += step.max(1);
                self.gather_cursor_bucket();
            }
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no live entry remains.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The serial the next [`push`](TimeWheel::push) will hand out.
    pub fn next_serial(&self) -> u64 {
        self.next_serial
    }

    /// Clears the wheel back to its freshly constructed condition while
    /// keeping every allocation (slot arena, ring heads, spill storage,
    /// bitset words).  Serial numbering restarts at zero — see the module
    /// docs for why that is part of the ordering contract.
    pub fn reset(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.heads.fill(NIL);
        self.occupancy.fill(0);
        self.drain.clear();
        self.spill.clear();
        self.dead.clear();
        self.next_serial = 0;
        self.cursor_day = 0;
        self.in_buckets = 0;
        self.live = 0;
    }
}

impl<T: Copy> Default for TimeWheel<T> {
    fn default() -> Self {
        TimeWheel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn drain(wheel: &mut TimeWheel<u32>) -> Vec<(i64, u64, u32)> {
        std::iter::from_fn(|| wheel.pop())
            .map(|(time, serial, payload)| (time.as_fs(), serial, payload))
            .collect()
    }

    #[test]
    fn pops_ascend_by_time_then_serial() {
        let mut wheel = TimeWheel::new();
        wheel.push(Time::from_fs(500), 0);
        wheel.push(Time::from_fs(100), 1);
        wheel.push(Time::from_fs(500), 2);
        wheel.push(Time::from_fs(100), 3);
        assert_eq!(
            drain(&mut wheel),
            vec![(100, 1, 1), (100, 3, 3), (500, 0, 0), (500, 2, 2)]
        );
    }

    #[test]
    fn far_future_entries_spill_and_migrate_back() {
        // One-bucket-wide days: almost everything beyond the window.
        let mut wheel = TimeWheel::with_geometry(4, 8);
        let horizon = 16 * 8; // window width in fs
        wheel.push(Time::from_fs(3), 0);
        wheel.push(Time::from_fs(10 * horizon as i64), 1);
        wheel.push(Time::from_fs(2 * horizon as i64), 2);
        wheel.push(Time::from_fs(7), 3);
        assert_eq!(
            drain(&mut wheel),
            vec![
                (3, 0, 0),
                (7, 3, 3),
                (2 * horizon as i64, 2, 2),
                (10 * horizon as i64, 1, 1)
            ]
        );
    }

    #[test]
    fn cancelled_entries_never_pop_and_len_tracks_live() {
        let mut wheel = TimeWheel::new();
        let a = wheel.push(Time::from_fs(100), 0);
        let b = wheel.push(Time::from_fs(200), 1);
        wheel.cancel(a);
        assert_eq!(wheel.len(), 1);
        assert_eq!(wheel.pop(), Some((Time::from_fs(200), b, 1)));
        assert!(wheel.is_empty());
        assert_eq!(wheel.pop(), None);
    }

    #[test]
    fn cancelling_a_spill_entry_works() {
        let mut wheel = TimeWheel::with_geometry(4, 8);
        wheel.push(Time::from_fs(1), 0);
        let far = wheel.push(Time::from_fs(1_000_000), 1);
        wheel.cancel(far);
        assert_eq!(drain(&mut wheel), vec![(1, 0, 0)]);
    }

    #[test]
    fn cancel_of_a_popped_serial_is_a_tolerated_no_op() {
        let mut wheel = TimeWheel::new();
        let serial = wheel.push(Time::from_fs(100), 7);
        assert_eq!(wheel.pop(), Some((Time::from_fs(100), serial, 7)));
        // The classical engine's pending markers can outlive their commit;
        // cancelling one must not disturb the live count.
        assert!(!wheel.cancel(serial));
        assert!(wheel.is_empty());
        let other = wheel.push(Time::from_fs(200), 8);
        assert_eq!(wheel.len(), 1);
        assert_eq!(wheel.pop(), Some((Time::from_fs(200), other, 8)));
    }

    #[test]
    fn inserts_before_the_cursor_keep_their_true_time() {
        let mut wheel = TimeWheel::new();
        wheel.push(Time::from_ns(1.0), 0);
        assert!(wheel.pop().is_some());
        // The wheel is empty: the cursor follows the insert backwards.
        wheel.push(Time::from_ns(0.5), 1);
        // Not empty: an even earlier insert clamps into the cursor bucket
        // but still pops first by its true timestamp.
        wheel.push(Time::from_ns(0.25), 2);
        let order: Vec<u32> = std::iter::from_fn(|| wheel.pop())
            .map(|(_, _, p)| p)
            .collect();
        assert_eq!(order, vec![2, 1]);
    }

    #[test]
    fn reset_restores_serials_and_keeps_popping_correctly() {
        let mut wheel = TimeWheel::new();
        wheel.push(Time::from_ns(5.0), 0);
        let doomed = wheel.push(Time::from_ns(6.0), 1);
        wheel.cancel(doomed);
        wheel.reset();
        assert!(wheel.is_empty());
        assert_eq!(wheel.next_serial(), 0);
        let serial = wheel.push(Time::from_ns(1.0), 7);
        assert_eq!(serial, 0);
        assert_eq!(wheel.pop(), Some((Time::from_ns(1.0), 0, 7)));
    }

    #[test]
    fn dense_equal_time_burst_pops_in_insertion_order() {
        let mut wheel = TimeWheel::new();
        for payload in 0..100u32 {
            wheel.push(Time::from_ns(3.0), payload);
        }
        let popped: Vec<u32> = std::iter::from_fn(|| wheel.pop())
            .map(|(_, _, p)| p)
            .collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn arena_recycles_slots_instead_of_growing() {
        let mut wheel = TimeWheel::new();
        for round in 0..50i64 {
            wheel.push(Time::from_fs(round * 1_000), 0);
            wheel.pop();
        }
        // One slot in flight at a time: the arena never needs a second.
        assert_eq!(wheel.slots.len(), 1);
    }

    proptest! {
        /// Against a sorted-vector model: identical (time, serial, payload)
        /// pop sequence for arbitrary pushes, including times far outside
        /// the ring window and interleaved cancellations.
        #[test]
        fn prop_matches_sorted_reference(
            ops in proptest::collection::vec((0i64..2_000_000, 0u8..10), 1..300),
        ) {
            let mut wheel = TimeWheel::with_geometry(6, 16);
            let mut model: Vec<(i64, u64, u32)> = Vec::new();
            for (index, &(time, action)) in ops.iter().enumerate() {
                if action == 0 && !model.is_empty() && index % 3 == 0 {
                    // Cancel the most recently pushed surviving entry.
                    let (_, serial, _) = model.remove(model.len() - 1);
                    wheel.cancel(serial);
                } else {
                    let serial = wheel.push(Time::from_fs(time), index as u32);
                    model.push((time, serial, index as u32));
                }
            }
            model.sort();
            prop_assert_eq!(wheel.len(), model.len());
            let popped = drain(&mut wheel);
            prop_assert_eq!(popped, model);
        }

        /// Interleaved push/pop: popping mid-stream never disturbs global
        /// (time, serial) order of what remains.
        #[test]
        fn prop_interleaved_pops_stay_sorted(
            times in proptest::collection::vec(0i64..500_000, 1..200),
        ) {
            let mut wheel = TimeWheel::with_geometry(8, 32);
            let mut popped = Vec::new();
            for (index, &time) in times.iter().enumerate() {
                wheel.push(Time::from_fs(time), index as u32);
                if index % 4 == 3 {
                    if let Some((t, s, _)) = wheel.pop() {
                        popped.push((t, s));
                    }
                }
            }
            while let Some((t, s, _)) = wheel.pop() {
                popped.push((t, s));
            }
            prop_assert_eq!(popped.len(), times.len());
            // Serial order must hold among equal times *within each
            // uninterrupted drain*; globally, times popped later can only
            // regress when they were pushed later (after a pop).  The
            // fundamental guarantee: each pop returns the minimum of the
            // entries live at that moment — checked by the sorted model
            // above; here we check nothing is lost or duplicated.
            let mut serials: Vec<u64> = popped.iter().map(|&(_, s)| s).collect();
            serials.sort_unstable();
            serials.dedup();
            prop_assert_eq!(serials.len(), times.len());
        }
    }
}
