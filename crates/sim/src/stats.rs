//! Simulation statistics — the quantities behind the paper's Table 1.

use std::fmt;

use halotis_delay::DelayModelKind;

/// Counters accumulated over one simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimulationStats {
    /// Events inserted into the queue ("Events" in Table 1).
    pub events_scheduled: usize,
    /// Events removed by the per-input cancellation rule
    /// ("Filtered events" in Table 1).
    pub events_filtered: usize,
    /// Events actually popped and evaluated.
    pub events_processed: usize,
    /// Output transitions generated on nets (the switching activity the
    /// paper discusses: CDM overestimates it by tens of percent).
    pub output_transitions: usize,
    /// Output transitions whose delay was reduced by the degradation model.
    pub degraded_transitions: usize,
    /// Output transitions whose delay collapsed to zero (fully degraded
    /// runt excitations).
    pub collapsed_transitions: usize,
    /// The largest number of live events the queue held at any instant — the
    /// event-budget telemetry of the soak scenarios.  Aggregation takes the
    /// maximum across runs rather than a sum: a fleet-wide peak, not a
    /// count.
    pub queue_high_water: usize,
}

impl SimulationStats {
    /// Switching-activity overestimation of `other` relative to `self`, in
    /// percent — how Table 1 reports CDM against DDM.
    pub fn overestimation_percent(&self, other: &SimulationStats) -> f64 {
        if self.events_scheduled == 0 {
            return 0.0;
        }
        (other.events_scheduled as f64 - self.events_scheduled as f64)
            / self.events_scheduled as f64
            * 100.0
    }

    /// Accumulates another run's counters into `self` — used by the
    /// [`BatchRunner`](crate::BatchRunner) to aggregate a whole scenario
    /// sweep.
    ///
    /// # Example
    ///
    /// ```
    /// use halotis_sim::SimulationStats;
    ///
    /// let mut totals = SimulationStats::default();
    /// let run = SimulationStats { events_scheduled: 10, events_processed: 8, ..Default::default() };
    /// totals.merge(&run);
    /// totals.merge(&run);
    /// assert_eq!(totals.events_scheduled, 20);
    /// assert_eq!(totals.events_processed, 16);
    /// ```
    pub fn merge(&mut self, other: &SimulationStats) {
        self.events_scheduled += other.events_scheduled;
        self.events_filtered += other.events_filtered;
        self.events_processed += other.events_processed;
        self.output_transitions += other.output_transitions;
        self.degraded_transitions += other.degraded_transitions;
        self.collapsed_transitions += other.collapsed_transitions;
        self.queue_high_water = self.queue_high_water.max(other.queue_high_water);
    }

    /// Fraction of processed events that produced an output transition.
    pub fn activity_ratio(&self) -> f64 {
        if self.events_processed == 0 {
            return 0.0;
        }
        self.output_transitions as f64 / self.events_processed as f64
    }
}

impl fmt::Display for SimulationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "events: {} scheduled, {} filtered, {} processed (queue peak {}); transitions: {} ({} degraded, {} collapsed)",
            self.events_scheduled,
            self.events_filtered,
            self.events_processed,
            self.queue_high_water,
            self.output_transitions,
            self.degraded_transitions,
            self.collapsed_transitions
        )
    }
}

/// One row of the Table 1 reproduction: the DDM and CDM statistics for a
/// stimulus sequence, plus the derived overestimation percentage.
#[derive(Clone, Debug, PartialEq)]
pub struct ComparisonRow {
    /// Human-readable sequence label (e.g. `"0x0, 7x7, 5xA, Ex6, FxF"`).
    pub sequence: String,
    /// Statistics of the HALOTIS-DDM run.
    pub ddm: SimulationStats,
    /// Statistics of the HALOTIS-CDM run.
    pub cdm: SimulationStats,
}

impl ComparisonRow {
    /// The CDM event-count overestimation in percent (Table 1's
    /// "Overst. CDM (%)" column).
    pub fn overestimation_percent(&self) -> f64 {
        self.ddm.overestimation_percent(&self.cdm)
    }

    /// The statistics of one model.
    pub fn stats(&self, model: DelayModelKind) -> &SimulationStats {
        match model {
            DelayModelKind::Degradation => &self.ddm,
            DelayModelKind::Conventional => &self.cdm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(scheduled: usize, filtered: usize) -> SimulationStats {
        SimulationStats {
            events_scheduled: scheduled,
            events_filtered: filtered,
            events_processed: scheduled - filtered,
            output_transitions: scheduled / 2,
            degraded_transitions: 0,
            collapsed_transitions: 0,
            queue_high_water: scheduled.min(8),
        }
    }

    #[test]
    fn merge_takes_the_maximum_high_water() {
        let mut totals = SimulationStats::default();
        totals.merge(&stats(100, 5));
        totals.merge(&stats(3, 0));
        assert_eq!(totals.queue_high_water, 8);
        assert_eq!(totals.events_scheduled, 103);
    }

    #[test]
    fn overestimation_matches_table1_formula() {
        let ddm = stats(959, 27);
        let cdm = stats(1411, 1);
        let overestimation = ddm.overestimation_percent(&cdm);
        // The paper reports 47 % for this pair of counts.
        assert!((overestimation - 47.13).abs() < 0.1, "{overestimation}");
    }

    #[test]
    fn overestimation_of_empty_run_is_zero() {
        let empty = SimulationStats::default();
        assert_eq!(empty.overestimation_percent(&stats(10, 0)), 0.0);
        assert_eq!(empty.activity_ratio(), 0.0);
    }

    #[test]
    fn comparison_row_selects_models() {
        let row = ComparisonRow {
            sequence: "0x0, FxF".to_string(),
            ddm: stats(1312, 66),
            cdm: stats(1992, 6),
        };
        assert!((row.overestimation_percent() - 51.8).abs() < 0.3);
        assert_eq!(row.stats(DelayModelKind::Degradation), &row.ddm);
        assert_eq!(row.stats(DelayModelKind::Conventional), &row.cdm);
    }

    #[test]
    fn display_lists_all_counters() {
        let text = stats(100, 5).to_string();
        assert!(text.contains("100 scheduled"));
        assert!(text.contains("5 filtered"));
    }

    #[test]
    fn activity_ratio_is_bounded() {
        let s = stats(100, 10);
        assert!(s.activity_ratio() > 0.0 && s.activity_ratio() <= 1.0);
    }
}
