//! Simulation results: recorded waveforms plus statistics.

use std::time::Duration;

use halotis_core::Voltage;
use halotis_delay::{DelayModelHandle, DelayModelKind};
use halotis_waveform::{DigitalWaveform, IdealWaveform, Trace};

use crate::stats::SimulationStats;

/// Everything one simulation run produces.
#[derive(Clone, Debug)]
pub struct SimulationResult {
    model: DelayModelHandle,
    vdd: Voltage,
    waveforms: Trace<DigitalWaveform>,
    output_names: Vec<String>,
    stats: SimulationStats,
    wall_time: Duration,
}

impl SimulationResult {
    /// Assembles a result (used by the engines).
    pub(crate) fn new(
        model: DelayModelHandle,
        vdd: Voltage,
        waveforms: Trace<DigitalWaveform>,
        output_names: Vec<String>,
        stats: SimulationStats,
        wall_time: Duration,
    ) -> Self {
        SimulationResult {
            model,
            vdd,
            waveforms,
            output_names,
            stats,
            wall_time,
        }
    }

    /// The delay model the run used.
    pub fn model(&self) -> &DelayModelHandle {
        &self.model
    }

    /// The built-in [`DelayModelKind`] the run's model corresponds to, or
    /// `None` for custom and composite models.
    pub fn model_kind(&self) -> Option<DelayModelKind> {
        self.model.kind()
    }

    /// The report label of the run's model (`"DDM"`, `"CDM"`, or whatever a
    /// custom model declares).
    pub fn model_label(&self) -> &str {
        self.model.label()
    }

    /// The supply voltage of the run.
    pub fn vdd(&self) -> Voltage {
        self.vdd
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &SimulationStats {
        &self.stats
    }

    /// Wall-clock time spent inside the simulation loop (the paper's
    /// Table 2 metric).
    pub fn wall_time(&self) -> Duration {
        self.wall_time
    }

    /// Every net's raw waveform (all transitions, including runt pulses that
    /// a half-swing observer would never see), keyed by net name.
    pub fn waveforms(&self) -> &Trace<DigitalWaveform> {
        &self.waveforms
    }

    /// The raw waveform of one net.
    pub fn waveform(&self, net: &str) -> Option<&DigitalWaveform> {
        self.waveforms.get(net)
    }

    /// One net's waveform as seen by a conventional half-swing observer.
    pub fn ideal_waveform(&self, net: &str) -> Option<IdealWaveform> {
        self.waveforms
            .get(net)
            .map(|w| w.ideal_half_swing(self.vdd))
    }

    /// The primary-output names, in netlist declaration order.
    pub fn output_names(&self) -> &[String] {
        &self.output_names
    }

    /// All primary outputs as half-swing ideal waveforms, in declaration
    /// order — the view the paper's Figs. 6–7 plot.
    pub fn output_trace(&self) -> Trace<IdealWaveform> {
        self.output_names
            .iter()
            .filter_map(|name| {
                self.waveforms
                    .get(name)
                    .map(|w| (name.clone(), w.ideal_half_swing(self.vdd)))
            })
            .collect()
    }

    /// All nets as half-swing ideal waveforms.
    pub fn full_trace(&self) -> Trace<IdealWaveform> {
        self.waveforms.map(|_, w| w.ideal_half_swing(self.vdd))
    }

    /// Total number of half-swing edges across the primary outputs — a
    /// convenient scalar for comparing runs.
    pub fn output_edge_count(&self) -> usize {
        self.output_trace()
            .iter()
            .map(|(_, w)| w.edge_count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_core::{Edge, LogicLevel, Time, TimeDelta};
    use halotis_waveform::Transition;

    fn sample_result() -> SimulationResult {
        let vdd = Voltage::from_volts(5.0);
        let mut waveforms = Trace::new();
        let mut out = DigitalWaveform::new(LogicLevel::Low);
        out.push(Transition::new(
            Time::from_ns(1.0),
            TimeDelta::from_ps(200.0),
            Edge::Rise,
        ));
        waveforms.insert("out", out);
        waveforms.insert("internal", DigitalWaveform::new(LogicLevel::High));
        SimulationResult::new(
            DelayModelKind::Degradation.into(),
            vdd,
            waveforms,
            vec!["out".to_string()],
            SimulationStats::default(),
            Duration::from_millis(3),
        )
    }

    #[test]
    fn accessors_expose_run_metadata() {
        let result = sample_result();
        assert_eq!(result.model_kind(), Some(DelayModelKind::Degradation));
        assert_eq!(result.model_label(), "DDM");
        assert_eq!(*result.model(), DelayModelKind::Degradation);
        assert_eq!(result.vdd(), Voltage::from_volts(5.0));
        assert_eq!(result.wall_time(), Duration::from_millis(3));
        assert_eq!(result.output_names(), &["out".to_string()]);
        assert_eq!(result.stats(), &SimulationStats::default());
    }

    #[test]
    fn trace_projections_cover_outputs_and_all_nets() {
        let result = sample_result();
        assert!(result.waveform("out").is_some());
        assert!(result.waveform("missing").is_none());
        let ideal = result.ideal_waveform("out").unwrap();
        assert_eq!(ideal.final_level(), LogicLevel::High);
        assert_eq!(result.output_trace().len(), 1);
        assert_eq!(result.full_trace().len(), 2);
        assert_eq!(result.output_edge_count(), 1);
        assert_eq!(result.waveforms().len(), 2);
    }
}
