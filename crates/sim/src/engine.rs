//! The single-shot convenience front end of the HALOTIS engine.
//!
//! The actual Fig. 4 simulation loop lives in
//! [`CompiledCircuit`]: for every event popped from
//! the queue it
//!
//! 1. updates the level of the gate input where the event occurred,
//! 2. re-evaluates the gate; if the output value changes, it computes the
//!    output transition through the selected delay model (DDM applies the
//!    degradation of eq. 1 using `T`, the time since the gate's previous
//!    output transition),
//! 3. records the transition on the output net — **every** transition is
//!    recorded, even runt pulses, because in the IDDM filtering happens at
//!    the receiving inputs, not at the driving output,
//! 4. generates one candidate event per fanout input at the instant the new
//!    ramp crosses that input's own threshold (Fig. 3), letting the queue's
//!    per-input rule insert it or cancel the pulse for that input.  The
//!    queue is a bucketed time wheel ([`crate::queue`]) whose pop order —
//!    time, then schedule serial — makes the whole loop deterministic.
//!
//! [`Simulator`] wraps that core for one-off runs: each call to
//! [`Simulator::run`] compiles the circuit and executes once.  Multi-run
//! workloads should compile once via
//! [`CompiledCircuit::compile`](crate::CompiledCircuit::compile) and reuse
//! the compiled tables (and a [`SimState`](crate::SimState) arena, or a
//! [`BatchRunner`](crate::BatchRunner)) across stimuli.

use halotis_netlist::{Library, Netlist};
use halotis_waveform::Stimulus;

// The helper lived here historically; it is netlist vocabulary and moved to
// `halotis_netlist`.  Re-exported so `halotis_sim::engine::is_primary_input_net`
// keeps resolving.
pub use halotis_netlist::is_primary_input_net;

use crate::compiled::CompiledCircuit;
use crate::config::SimulationConfig;
use crate::error::SimulationError;
use crate::result::SimulationResult;

/// The HALOTIS simulator: a netlist plus a characterised library, ready to
/// run stimuli under either delay model.
///
/// This type compiles the circuit on every [`run`](Simulator::run) — the
/// right trade-off for a single stimulus.  See the
/// [crate-level example](crate) for end-to-end usage and
/// [`CompiledCircuit`] for the compile-once/run-many path.
#[derive(Clone, Copy, Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    library: &'a Library,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for `netlist` characterised by `library`.
    pub fn new(netlist: &'a Netlist, library: &'a Library) -> Self {
        Simulator { netlist, library }
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// The cell library in use.
    pub fn library(&self) -> &Library {
        self.library
    }

    /// Compiles the circuit and runs one simulation.
    ///
    /// # Errors
    ///
    /// * [`SimulationError::UndrivenPrimaryInput`] if the stimulus does not
    ///   cover every primary input,
    /// * [`SimulationError::Library`] if a gate uses an uncharacterised cell,
    /// * [`SimulationError::EventBudgetExhausted`] if the configured event
    ///   budget is exceeded.
    pub fn run(
        &self,
        stimulus: &Stimulus,
        config: &SimulationConfig,
    ) -> Result<SimulationResult, SimulationError> {
        CompiledCircuit::compile(self.netlist, self.library)?.run(stimulus, config)
    }

    /// Convenience: runs the same stimulus under both delay models and
    /// returns `(ddm, cdm)` — the comparison the paper's Table 1 makes.
    ///
    /// The circuit is compiled once and both runs share one state arena, so
    /// this costs one static preparation, not two.
    ///
    /// # Errors
    ///
    /// Propagates the first error of either run.
    pub fn run_both_models(
        &self,
        stimulus: &Stimulus,
        base: &SimulationConfig,
    ) -> Result<(SimulationResult, SimulationResult), SimulationError> {
        CompiledCircuit::compile(self.netlist, self.library)?.run_both_models(stimulus, base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_core::{LogicLevel, Time};
    use halotis_delay::DelayModelKind;
    use halotis_netlist::{generators, technology};

    fn chain_stimulus(library: &Library) -> Stimulus {
        let mut stimulus = Stimulus::new(library.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
        stimulus.drive("in", Time::from_ns(6.0), LogicLevel::Low);
        stimulus
    }

    #[test]
    fn inverter_chain_propagates_with_increasing_delay() {
        let netlist = generators::inverter_chain(4);
        let library = technology::cmos06();
        let simulator = Simulator::new(&netlist, &library);
        let result = simulator
            .run(&chain_stimulus(&library), &SimulationConfig::ddm())
            .unwrap();
        // The final output follows the input with the accumulated delay of
        // four inverters: it rises (even number of inversions) after 1 ns.
        let out = result.ideal_waveform("out").unwrap();
        assert_eq!(out.edge_count(), 2);
        let first_edge = out.changes()[0].0;
        assert!(first_edge > Time::from_ns(1.0));
        assert!(first_edge < Time::from_ns(4.0));
        // Each stage adds delay: intermediate nets switch earlier than `out`.
        let n1 = result.ideal_waveform("n1").unwrap();
        assert!(n1.changes()[0].0 < first_edge);
        assert!(result.stats().events_processed >= 8);
    }

    #[test]
    fn undriven_input_is_an_error() {
        let netlist = generators::c17();
        let library = technology::cmos06();
        let simulator = Simulator::new(&netlist, &library);
        let stimulus = Stimulus::new(library.default_input_slew());
        let err = simulator
            .run(&stimulus, &SimulationConfig::ddm())
            .unwrap_err();
        assert!(matches!(err, SimulationError::UndrivenPrimaryInput { .. }));
    }

    #[test]
    fn event_budget_is_enforced() {
        let netlist = generators::inverter_chain(8);
        let library = technology::cmos06();
        let simulator = Simulator::new(&netlist, &library);
        let config = SimulationConfig::ddm().with_max_events(2);
        let err = simulator
            .run(&chain_stimulus(&library), &config)
            .unwrap_err();
        assert_eq!(err, SimulationError::EventBudgetExhausted { budget: 2 });
    }

    #[test]
    fn time_limit_truncates_the_run() {
        let netlist = generators::inverter_chain(8);
        let library = technology::cmos06();
        let simulator = Simulator::new(&netlist, &library);
        let unlimited = simulator
            .run(&chain_stimulus(&library), &SimulationConfig::ddm())
            .unwrap();
        let limited = simulator
            .run(
                &chain_stimulus(&library),
                &SimulationConfig::ddm().with_time_limit(Time::from_ns(1.5)),
            )
            .unwrap();
        assert!(limited.stats().events_processed < unlimited.stats().events_processed);
    }

    #[test]
    fn both_models_agree_on_a_glitch_free_circuit() {
        // A single slow edge through an inverter chain never triggers the
        // degradation model, so DDM and CDM must give identical waveforms.
        let netlist = generators::inverter_chain(3);
        let library = technology::cmos06();
        let simulator = Simulator::new(&netlist, &library);
        let mut stimulus = Stimulus::new(library.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        stimulus.drive("in", Time::from_ns(2.0), LogicLevel::High);
        let (ddm, cdm) = simulator
            .run_both_models(&stimulus, &SimulationConfig::default())
            .unwrap();
        assert_eq!(ddm.stats().events_processed, cdm.stats().events_processed);
        assert_eq!(ddm.stats().degraded_transitions, 0);
        let ddm_out = ddm.ideal_waveform("out").unwrap();
        let cdm_out = cdm.ideal_waveform("out").unwrap();
        assert_eq!(ddm_out.changes(), cdm_out.changes());
    }

    #[test]
    fn narrow_input_pulse_is_degraded_and_eventually_filtered() {
        // A pulse much narrower than the chain delay: with DDM the pulse
        // shrinks stage after stage and disappears; the total number of
        // half-swing edges seen downstream is smaller than with CDM.
        let netlist = generators::inverter_chain(6);
        let library = technology::cmos06();
        let simulator = Simulator::new(&netlist, &library);
        let mut stimulus = Stimulus::new(library.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
        stimulus.drive("in", Time::from_ns(1.25), LogicLevel::Low);
        let (ddm, cdm) = simulator
            .run_both_models(&stimulus, &SimulationConfig::default())
            .unwrap();
        assert!(ddm.stats().degraded_transitions > 0);
        let ddm_edges = ddm.ideal_waveform("out").unwrap().edge_count();
        let cdm_edges = cdm.ideal_waveform("out").unwrap().edge_count();
        assert!(
            ddm_edges <= cdm_edges,
            "DDM produced more output edges ({ddm_edges}) than CDM ({cdm_edges})"
        );
        // Both settle back to the quiescent value.
        assert_eq!(
            ddm.ideal_waveform("out").unwrap().final_level(),
            cdm.ideal_waveform("out").unwrap().final_level()
        );
    }

    #[test]
    fn per_input_thresholds_split_one_pulse_between_fanouts() {
        // The Fig. 1 circuit: a marginal pulse on out0 reaches the
        // low-threshold branch but not the high-threshold branch.
        let (netlist, nets) = generators::figure1(0.15, 0.85);
        let library = technology::cmos06();
        let simulator = Simulator::new(&netlist, &library);
        let mut stimulus = Stimulus::new(library.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        // A pulse narrow enough to be marginal after the shaping chain.
        stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
        stimulus.drive("in", Time::from_ns(1.35), LogicLevel::Low);
        let result = simulator.run(&stimulus, &SimulationConfig::ddm()).unwrap();
        let low_branch = result.waveform(&nets.out1).unwrap().len();
        let high_branch = result.waveform(&nets.out2).unwrap().len();
        assert!(
            low_branch >= high_branch,
            "low-threshold branch ({low_branch}) should see at least as many transitions as the high-threshold branch ({high_branch})"
        );
        assert!(result.stats().events_filtered > 0 || high_branch < 2);
    }

    #[test]
    fn multiplier_settles_to_the_correct_product() {
        let netlist = generators::multiplier(4, 4);
        let ports = generators::MultiplierPorts::new(4, 4);
        let library = technology::cmos06();
        let simulator = Simulator::new(&netlist, &library);
        for (a, b) in [(0x7u64, 0x7u64), (0x5, 0xA), (0xE, 0x6), (0xF, 0xF)] {
            let mut stimulus = Stimulus::new(library.default_input_slew());
            for bit in ports.a_refs().iter().chain(ports.b_refs().iter()) {
                stimulus.set_initial(*bit, LogicLevel::Low);
            }
            stimulus.drive_bus_value(&ports.a_refs(), a, Time::from_ns(1.0));
            stimulus.drive_bus_value(&ports.b_refs(), b, Time::from_ns(1.0));
            let result = simulator.run(&stimulus, &SimulationConfig::ddm()).unwrap();
            let mut product = 0u64;
            for (bit, name) in ports.s.iter().enumerate() {
                if result.ideal_waveform(name).unwrap().final_level() == LogicLevel::High {
                    product |= 1 << bit;
                }
            }
            assert_eq!(product, a * b, "{a:#x} x {b:#x}");
        }
    }

    #[test]
    fn model_kind_is_recorded_in_the_result() {
        let netlist = generators::inverter_chain(2);
        let library = technology::cmos06();
        let simulator = Simulator::new(&netlist, &library);
        assert_eq!(simulator.netlist().gate_count(), 2);
        assert_eq!(simulator.library().name(), "cmos06-synthetic");
        let result = simulator
            .run(&chain_stimulus(&library), &SimulationConfig::cdm())
            .unwrap();
        assert_eq!(result.model_kind(), Some(DelayModelKind::Conventional));
        assert_eq!(result.model_label(), "CDM");
        assert!(is_primary_input_net(
            &netlist,
            netlist.net_id("in").unwrap()
        ));
        assert!(!is_primary_input_net(
            &netlist,
            netlist.net_id("out").unwrap()
        ));
    }
}
