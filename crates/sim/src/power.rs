//! Switching-activity based dynamic-power estimation.
//!
//! The paper motivates accurate glitch handling with power analysis: a delay
//! model that propagates glitches the real circuit would swallow
//! overestimates the switching activity — and therefore the dynamic power —
//! by tens of percent (Table 1 discussion).  This module turns a
//! [`SimulationResult`] into per-net and total dynamic energy using the
//! standard `E = Σ C_net · Vdd² · N_transitions` model, so the DDM/CDM power
//! gap can be quantified directly.

use halotis_core::{Capacitance, Voltage};
use halotis_netlist::library::LibraryError;
use halotis_netlist::{Library, Netlist};

use crate::compiled::CompiledCircuit;
use crate::result::SimulationResult;

/// Dynamic-energy estimate of one simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerReport {
    vdd: Voltage,
    per_net: Vec<NetEnergy>,
    total_joules: f64,
    total_transitions: usize,
}

/// Energy attributed to one net.
#[derive(Clone, Debug, PartialEq)]
pub struct NetEnergy {
    /// The net name.
    pub net: String,
    /// The switched capacitance of the net (fanout input capacitance plus
    /// wire capacitance).
    pub capacitance: Capacitance,
    /// Number of transitions recorded on the net.
    pub transitions: usize,
    /// `C · Vdd² · transitions`, in joules.
    pub energy_joules: f64,
}

impl PowerReport {
    /// Total dynamic energy of the run, in joules.
    pub fn total_joules(&self) -> f64 {
        self.total_joules
    }

    /// Total number of net transitions that contributed energy.
    pub fn total_transitions(&self) -> usize {
        self.total_transitions
    }

    /// The supply voltage used for the estimate.
    pub fn vdd(&self) -> Voltage {
        self.vdd
    }

    /// Per-net contributions, sorted from the most to the least energetic.
    pub fn per_net(&self) -> &[NetEnergy] {
        &self.per_net
    }

    /// The `count` most energetic nets — the usual starting point of a
    /// glitch-power clean-up.
    pub fn hotspots(&self, count: usize) -> &[NetEnergy] {
        &self.per_net[..count.min(self.per_net.len())]
    }

    /// Relative overestimation of `other` with respect to `self`, in
    /// percent.  Calling this on a DDM report with a CDM report as `other`
    /// gives the power-overestimation figure the paper's Table 1 discussion
    /// refers to.
    pub fn overestimation_percent(&self, other: &PowerReport) -> f64 {
        if self.total_joules <= 0.0 {
            return 0.0;
        }
        (other.total_joules - self.total_joules) / self.total_joules * 100.0
    }
}

/// Estimates the dynamic energy of a simulation run.
///
/// Every transition recorded on a net (including runt pulses) contributes
/// one full `C · Vdd²` charge/discharge.  That is slightly pessimistic for
/// partial-swing pulses but identical for the DDM and CDM runs, so the
/// *ratio* between them — the quantity of interest — is unaffected.
///
/// # Errors
///
/// Returns a [`LibraryError`] if a fanout cell of some net is not
/// characterised in `library`.
///
/// # Example
///
/// ```
/// use halotis_core::{LogicLevel, Time};
/// use halotis_netlist::{generators, technology};
/// use halotis_sim::{power, SimulationConfig, Simulator};
/// use halotis_waveform::Stimulus;
///
/// let netlist = generators::inverter_chain(3);
/// let library = technology::cmos06();
/// let mut stimulus = Stimulus::new(library.default_input_slew());
/// stimulus.set_initial("in", LogicLevel::Low);
/// stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
/// let result = Simulator::new(&netlist, &library)
///     .run(&stimulus, &SimulationConfig::ddm())?;
/// let report = power::estimate(&netlist, &library, &result)?;
/// assert!(report.total_joules() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn estimate(
    netlist: &Netlist,
    library: &Library,
    result: &SimulationResult,
) -> Result<PowerReport, LibraryError> {
    let net_loads: Vec<Capacitance> = netlist
        .nets()
        .iter()
        .map(|net| netlist.net_load(net.id(), library))
        .collect::<Result<_, _>>()?;
    Ok(estimate_from_loads(netlist, &net_loads, result))
}

/// As [`estimate`], but reusing the net capacitances a [`CompiledCircuit`]
/// already computed — the right call inside a batch sweep, where recomputing
/// every net load per scenario would repeat part of the static preparation
/// the compiled core exists to avoid.
///
/// Infallible: the compilation step already validated every fanout cell.
///
/// # Example
///
/// ```
/// use halotis_core::{LogicLevel, Time};
/// use halotis_netlist::{generators, technology};
/// use halotis_sim::{power, CompiledCircuit, SimulationConfig};
/// use halotis_waveform::Stimulus;
///
/// let netlist = generators::inverter_chain(3);
/// let library = technology::cmos06();
/// let circuit = CompiledCircuit::compile(&netlist, &library)?;
/// let mut stimulus = Stimulus::new(library.default_input_slew());
/// stimulus.set_initial("in", LogicLevel::Low);
/// stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
/// let result = circuit.run(&stimulus, &SimulationConfig::ddm())?;
/// let report = power::estimate_compiled(&circuit, &result);
/// assert!(report.total_joules() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn estimate_compiled(circuit: &CompiledCircuit<'_>, result: &SimulationResult) -> PowerReport {
    estimate_from_loads(circuit.netlist(), circuit.net_loads(), result)
}

fn estimate_from_loads(
    netlist: &Netlist,
    net_loads: &[Capacitance],
    result: &SimulationResult,
) -> PowerReport {
    let counts: Vec<usize> = netlist
        .nets()
        .iter()
        .map(|net| {
            result
                .waveform(net.name())
                .map(|waveform| waveform.len())
                .unwrap_or(0)
        })
        .collect();
    report_from_counts(netlist, net_loads, result.vdd(), &counts)
}

/// Builds a report from per-net transition counts (indexed by net id) — the
/// shared core behind the result-walking estimators and the streaming
/// [`PowerAccumulator`](crate::PowerAccumulator) observer.
pub(crate) fn report_from_counts(
    netlist: &Netlist,
    net_loads: &[Capacitance],
    vdd: Voltage,
    counts: &[usize],
) -> PowerReport {
    let vdd_squared = vdd.as_volts() * vdd.as_volts();
    let mut per_net = Vec::with_capacity(netlist.net_count());
    let mut total_joules = 0.0;
    let mut total_transitions = 0usize;
    for net in netlist.nets() {
        let transitions = counts.get(net.id().index()).copied().unwrap_or(0);
        let capacitance = net_loads[net.id().index()];
        let energy = capacitance.as_farads() * vdd_squared * transitions as f64;
        total_joules += energy;
        total_transitions += transitions;
        per_net.push(NetEnergy {
            net: net.name().to_string(),
            capacitance,
            transitions,
            energy_joules: energy,
        });
    }
    per_net.sort_by(|a, b| {
        b.energy_joules
            .partial_cmp(&a.energy_joules)
            .expect("energies are finite")
    });
    PowerReport {
        vdd,
        per_net,
        total_joules,
        total_transitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimulationConfig, Simulator};
    use halotis_core::{LogicLevel, Time};
    use halotis_netlist::{generators, technology};
    use halotis_waveform::Stimulus;

    fn chain_report(edges: &[(f64, LogicLevel)]) -> (PowerReport, PowerReport) {
        let netlist = generators::inverter_chain(5);
        let library = technology::cmos06();
        let mut stimulus = Stimulus::new(library.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        for &(at, level) in edges {
            stimulus.drive("in", Time::from_ns(at), level);
        }
        let simulator = Simulator::new(&netlist, &library);
        let (ddm, cdm) = simulator
            .run_both_models(&stimulus, &SimulationConfig::default())
            .unwrap();
        (
            estimate(&netlist, &library, &ddm).unwrap(),
            estimate(&netlist, &library, &cdm).unwrap(),
        )
    }

    #[test]
    fn single_edge_costs_one_swing_per_net() {
        let (ddm, _) = chain_report(&[(1.0, LogicLevel::High)]);
        // One transition on the input plus one per chain stage.
        assert_eq!(ddm.total_transitions(), 6);
        assert!(ddm.total_joules() > 0.0);
        assert_eq!(ddm.vdd().as_volts(), 5.0);
    }

    #[test]
    fn cdm_energy_is_at_least_ddm_energy_for_glitchy_input() {
        let (ddm, cdm) = chain_report(&[
            (1.0, LogicLevel::High),
            (1.3, LogicLevel::Low),
            (4.0, LogicLevel::High),
        ]);
        assert!(cdm.total_joules() >= ddm.total_joules());
        assert!(ddm.overestimation_percent(&cdm) >= 0.0);
    }

    #[test]
    fn hotspots_are_sorted_by_energy() {
        let (ddm, _) = chain_report(&[(1.0, LogicLevel::High), (3.0, LogicLevel::Low)]);
        let hotspots = ddm.hotspots(3);
        assert_eq!(hotspots.len(), 3);
        assert!(hotspots[0].energy_joules >= hotspots[1].energy_joules);
        assert!(hotspots[1].energy_joules >= hotspots[2].energy_joules);
        // Asking for more hotspots than nets clamps.
        assert_eq!(ddm.hotspots(1000).len(), ddm.per_net().len());
    }

    #[test]
    fn empty_run_has_zero_energy_and_zero_overestimation() {
        let netlist = generators::inverter_chain(2);
        let library = technology::cmos06();
        let mut stimulus = Stimulus::new(library.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        let result = Simulator::new(&netlist, &library)
            .run(&stimulus, &SimulationConfig::ddm())
            .unwrap();
        let report = estimate(&netlist, &library, &result).unwrap();
        assert_eq!(report.total_transitions(), 0);
        assert_eq!(report.total_joules(), 0.0);
        assert_eq!(report.overestimation_percent(&report.clone()), 0.0);
    }

    #[test]
    fn compiled_estimate_matches_the_library_walking_estimate() {
        let netlist = generators::inverter_chain(4);
        let library = technology::cmos06();
        let circuit = crate::CompiledCircuit::compile(&netlist, &library).unwrap();
        let mut stimulus = Stimulus::new(library.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
        let result = circuit.run(&stimulus, &SimulationConfig::ddm()).unwrap();
        let walked = estimate(&netlist, &library, &result).unwrap();
        let compiled = estimate_compiled(&circuit, &result);
        assert_eq!(walked, compiled);
    }

    #[test]
    fn energy_is_consistent_with_hand_calculation() {
        let netlist = generators::inverter_chain(1);
        let library = technology::cmos06();
        let mut stimulus = Stimulus::new(library.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
        let result = Simulator::new(&netlist, &library)
            .run(&stimulus, &SimulationConfig::ddm())
            .unwrap();
        let report = estimate(&netlist, &library, &result).unwrap();
        let expected: f64 = report
            .per_net()
            .iter()
            .map(|net| net.capacitance.as_farads() * 25.0 * net.transitions as f64)
            .sum();
        assert!((report.total_joules() - expected).abs() < 1e-18);
    }
}
