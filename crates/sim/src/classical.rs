//! A conventional event-driven logic simulator with classical inertial
//! delay — the baseline whose shortcomings the paper's Fig. 1 demonstrates.
//!
//! Differences from the HALOTIS engine:
//!
//! * signals carry plain logic levels; the only observation threshold is
//!   `Vdd/2`, shared by every fanout input,
//! * the propagation delay is always the nominal (conventional) delay,
//! * pulse filtering happens **once, at the driving gate output**: when a
//!   gate schedules an output change while an opposite change is still
//!   pending, and the separation between the two is smaller than the gate's
//!   inertial delay (taken equal to its propagation delay), both are
//!   cancelled for *every* fanout gate.
//!
//! The result type is the shared [`SimulationResult`] so that figures and
//! tables can treat all three simulators (reference analog, HALOTIS,
//! classical) uniformly.
//!
//! The pending-commit store is the same [`TimeWheel`] the HALOTIS
//! [`EventQueue`](crate::queue::EventQueue) runs on — one implementation of
//! time-ordered insert with serial tie-breaks and lazy cancellation, not a
//! private copy that can drift from the engine's.

use std::time::Instant;

use halotis_core::{Capacitance, LogicLevel, NetId, Time, TimeDelta};
use halotis_delay::{inertial, nominal};
use halotis_netlist::eval;
use halotis_netlist::{Library, Netlist};
use halotis_waveform::{DigitalWaveform, Stimulus, Trace, Transition};

use crate::config::SimulationConfig;
use crate::error::SimulationError;
use crate::ramp;
use crate::result::SimulationResult;
use crate::stats::SimulationStats;
use crate::wheel::TimeWheel;

/// Wheel payload of one scheduled net-level commit; the commit instant and
/// the serial tie-break live in the wheel itself.
#[derive(Clone, Copy, Debug)]
struct NetCommit {
    net: NetId,
    level: LogicLevel,
    slew: TimeDelta,
}

/// The per-gate pending marker: enough of the in-flight commit to apply the
/// inertial rule (time, projected level) and to cancel it by serial.
#[derive(Clone, Copy, Debug)]
struct PendingCommit {
    serial: u64,
    time: Time,
    level: LogicLevel,
}

/// Runs the classical simulator on `netlist` with `library` timing.
///
/// Only the nominal delays of the library are used; the `model` field of
/// `config` is ignored (this simulator has no degradation support by
/// construction) and the result is labelled as conventional.
///
/// # Errors
///
/// Same error conditions as [`Simulator::run`](crate::Simulator::run).
///
/// # Example
///
/// ```
/// use halotis_core::{LogicLevel, Time};
/// use halotis_netlist::{generators, technology};
/// use halotis_sim::{classical, SimulationConfig};
/// use halotis_waveform::Stimulus;
///
/// let netlist = generators::inverter_chain(2);
/// let library = technology::cmos06();
/// let mut stimulus = Stimulus::new(library.default_input_slew());
/// stimulus.set_initial("in", LogicLevel::Low);
/// stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
/// let result = classical::run(&netlist, &library, &stimulus, &SimulationConfig::cdm())?;
/// assert_eq!(result.ideal_waveform("out").unwrap().final_level(), LogicLevel::High);
/// # Ok::<(), halotis_sim::SimulationError>(())
/// ```
pub fn run(
    netlist: &Netlist,
    library: &Library,
    stimulus: &Stimulus,
    config: &SimulationConfig,
) -> Result<SimulationResult, SimulationError> {
    let started = Instant::now();
    let vdd = library.vdd();

    let gate_loads: Vec<Capacitance> = netlist
        .gates()
        .iter()
        .map(|gate| netlist.net_load(gate.output(), library))
        .collect::<Result<_, _>>()?;

    // Initial levels.
    let mut assignments = Vec::with_capacity(netlist.primary_inputs().len());
    for &input in netlist.primary_inputs() {
        let name = netlist.net(input).name();
        let Some(waveform) = stimulus.waveform(name) else {
            return Err(SimulationError::UndrivenPrimaryInput {
                net: name.to_string(),
            });
        };
        assignments.push((input, waveform.initial()));
    }
    let mut net_levels = eval::evaluate(netlist, &assignments);

    let mut net_waveforms: Vec<DigitalWaveform> = netlist
        .nets()
        .iter()
        .map(|net| DigitalWaveform::new(net_levels[net.id().index()]))
        .collect();

    // Pending (scheduled, not yet committed) output change per gate.
    let mut pending: Vec<Option<PendingCommit>> = vec![None; netlist.gate_count()];

    let mut wheel: TimeWheel<NetCommit> = TimeWheel::new();
    let mut stats = SimulationStats::default();

    // Primary-input commits at the half-swing crossing of each stimulus edge.
    for &input in netlist.primary_inputs() {
        let waveform = stimulus
            .waveform(netlist.net(input).name())
            .expect("checked above");
        for transition in waveform.transitions() {
            wheel.push(
                transition.midpoint(vdd),
                NetCommit {
                    net: input,
                    level: transition.edge().target_level(),
                    slew: transition.slew(),
                },
            );
            stats.events_scheduled += 1;
        }
    }

    while let Some((commit_time, commit_serial, commit)) = wheel.pop() {
        if let Some(limit) = config.time_limit {
            if commit_time > limit {
                break;
            }
        }
        stats.events_processed += 1;
        if stats.events_processed > config.max_events {
            return Err(SimulationError::EventBudgetExhausted {
                budget: config.max_events,
            });
        }

        let net = commit.net;
        if net_levels[net.index()] == commit.level {
            continue;
        }
        let previous_level = net_levels[net.index()];
        net_levels[net.index()] = commit.level;
        if let Some(edge) = ramp::edge_toward(previous_level, commit.level) {
            net_waveforms[net.index()].push(Transition::new(commit_time, commit.slew, edge));
            stats.output_transitions += 1;
        }
        // Clear the pending marker of the driving gate if this was its commit.
        if let halotis_netlist::NetDriver::Gate(driver) = netlist.net(net).driver() {
            if pending[driver.index()].is_some_and(|p| p.serial == commit_serial) {
                pending[driver.index()] = None;
            }
        }

        for &pin in netlist.net(net).loads() {
            let gate = netlist.gate(pin.gate());
            let inputs: Vec<LogicLevel> = gate
                .inputs()
                .iter()
                .map(|&n| net_levels[n.index()])
                .collect();
            let new_value = gate.kind().evaluate(&inputs);
            let committed = net_levels[gate.output().index()];
            let projected = pending[gate.id().index()]
                .map(|p| p.level)
                .unwrap_or(committed);
            if new_value == projected {
                continue;
            }
            let Some(edge) = ramp::edge_toward(projected, new_value) else {
                continue;
            };
            let arc = library.pin(gate.kind(), pin.input_index())?.timing;
            let timing = nominal::timing(
                arc.for_edge(edge),
                gate_loads[gate.id().index()],
                commit.slew,
            );
            let new_time = commit_time + timing.delay;

            if let Some(previous) = pending[gate.id().index()] {
                // Opposite-value change already in flight: apply the
                // classical inertial rule to the pulse they would form.
                let width = new_time - previous.time;
                stats.events_scheduled += 1;
                if !inertial::decide(width, timing.delay).propagates() {
                    wheel.cancel(previous.serial);
                    pending[gate.id().index()] = None;
                    stats.events_filtered += 2;
                    continue;
                }
            } else {
                stats.events_scheduled += 1;
            }

            let serial = wheel.push(
                new_time,
                NetCommit {
                    net: gate.output(),
                    level: new_value,
                    slew: timing.output_slew,
                },
            );
            pending[gate.id().index()] = Some(PendingCommit {
                serial,
                time: new_time,
                level: new_value,
            });
        }
    }

    let mut waveforms = Trace::new();
    for net in netlist.nets() {
        waveforms.insert(
            net.name(),
            std::mem::replace(
                &mut net_waveforms[net.id().index()],
                DigitalWaveform::new(LogicLevel::Unknown),
            ),
        );
    }
    let output_names = netlist
        .primary_outputs()
        .iter()
        .map(|&net| netlist.net(net).name().to_string())
        .collect();
    Ok(SimulationResult::new(
        halotis_delay::DelayModelKind::Conventional.into(),
        vdd,
        waveforms,
        output_names,
        stats,
        started.elapsed(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_netlist::{generators, technology};

    fn step_stimulus(library: &Library, at_ns: f64) -> Stimulus {
        let mut stimulus = Stimulus::new(library.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        stimulus.drive("in", Time::from_ns(at_ns), LogicLevel::High);
        stimulus
    }

    #[test]
    fn single_edge_propagates_like_halotis() {
        let netlist = generators::inverter_chain(3);
        let library = technology::cmos06();
        let stimulus = step_stimulus(&library, 1.0);
        let classical = run(&netlist, &library, &stimulus, &SimulationConfig::cdm()).unwrap();
        let halotis = crate::Simulator::new(&netlist, &library)
            .run(&stimulus, &SimulationConfig::cdm())
            .unwrap();
        let c = classical.ideal_waveform("out").unwrap();
        let h = halotis.ideal_waveform("out").unwrap();
        assert_eq!(c.final_level(), h.final_level());
        assert_eq!(c.edge_count(), h.edge_count());
        // Edge times agree to within one gate delay (the two engines use
        // different reference points for the ramp).
        let dt = (c.changes()[0].0 - h.changes()[0].0).abs();
        assert!(dt < TimeDelta::from_ps(800.0), "difference {dt}");
    }

    #[test]
    fn narrow_pulse_is_filtered_at_the_output_for_all_fanouts() {
        // Classical rule: the pulse disappears for both branches of the
        // Fig. 1 circuit, no matter their thresholds.
        let (netlist, nets) = generators::figure1(0.15, 0.85);
        let library = technology::cmos06();
        let mut stimulus = Stimulus::new(library.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
        stimulus.drive("in", Time::from_ns(1.05), LogicLevel::Low);
        let result = run(&netlist, &library, &stimulus, &SimulationConfig::cdm()).unwrap();
        let out1 = result.ideal_waveform(&nets.out1).unwrap().edge_count();
        let out2 = result.ideal_waveform(&nets.out2).unwrap().edge_count();
        assert_eq!(out1, out2, "classical filtering is all-or-nothing");
        assert!(result.stats().events_filtered > 0 || out1 == 0);
    }

    #[test]
    fn wide_pulse_propagates_to_both_fanouts() {
        let (netlist, nets) = generators::figure1(0.15, 0.85);
        let library = technology::cmos06();
        let mut stimulus = Stimulus::new(library.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
        stimulus.drive("in", Time::from_ns(4.0), LogicLevel::Low);
        let result = run(&netlist, &library, &stimulus, &SimulationConfig::cdm()).unwrap();
        assert_eq!(result.ideal_waveform(&nets.out1).unwrap().edge_count(), 2);
        assert_eq!(result.ideal_waveform(&nets.out2).unwrap().edge_count(), 2);
    }

    #[test]
    fn undriven_input_is_rejected() {
        let netlist = generators::c17();
        let library = technology::cmos06();
        let stimulus = Stimulus::new(library.default_input_slew());
        let err = run(&netlist, &library, &stimulus, &SimulationConfig::cdm()).unwrap_err();
        assert!(matches!(err, SimulationError::UndrivenPrimaryInput { .. }));
    }

    #[test]
    fn multiplier_product_is_functionally_correct() {
        let netlist = generators::multiplier(4, 4);
        let ports = generators::MultiplierPorts::new(4, 4);
        let library = technology::cmos06();
        let mut stimulus = Stimulus::new(library.default_input_slew());
        for bit in ports.a_refs().iter().chain(ports.b_refs().iter()) {
            stimulus.set_initial(*bit, LogicLevel::Low);
        }
        stimulus.drive_bus_value(&ports.a_refs(), 0xB, Time::from_ns(1.0));
        stimulus.drive_bus_value(&ports.b_refs(), 0xD, Time::from_ns(1.0));
        let result = run(&netlist, &library, &stimulus, &SimulationConfig::cdm()).unwrap();
        let mut product = 0u64;
        for (bit, name) in ports.s.iter().enumerate() {
            if result.ideal_waveform(name).unwrap().final_level() == LogicLevel::High {
                product |= 1 << bit;
            }
        }
        assert_eq!(product, 0xB * 0xD);
    }
}
