//! Static timing analysis over the compiled circuit graph.
//!
//! [`analyze`] runs a topological longest-path pass on the
//! [`CsrGraph`](halotis_netlist::graph::CsrGraph) exported by
//! [`CompiledCircuit::fanout_csr`], using the same library timing arcs the
//! event-driven engine evaluates — no separate characterisation, no
//! duplicated delay math.  The result is a per-net **upper bound** on when
//! activity on that net can end, measured from the end of the primary-input
//! stimulus ramp that triggered it.
//!
//! The bound is conservative by construction, arc by arc:
//!
//! * an input event fires where the input ramp crosses the pin threshold,
//!   which is never after the ramp ends (crossing progress is within
//!   `[0, 1]`);
//! * the nominal delay `tp0 = t_intrinsic + R·CL + S·tau_in` is linear in
//!   the input slew, so its maximum over any realisable slew in
//!   `[0, slew_bound]` is at an endpoint — both are evaluated, making the
//!   bound robust to negative slew-sensitivity coefficients;
//! * the output ramp starts at most `max(0, tp0 − tau_out/2)` after the
//!   input event (the causality clamp of
//!   [`ramp_start`](crate::ramp::ramp_start)) and lasts `tau_out`, which
//!   depends only on the load — so per-net slew bounds are exact, not
//!   estimates;
//! * degradation (the DDM) only *shortens* or *cancels* transitions
//!   relative to this nominal schedule, so the bound holds for every delay
//!   model the engine ships.
//!
//! What the bound does **not** cover is the engine's `+1 fs` monotonicity
//! nudge, which can push a ramp start one femtosecond past its predecessor
//! any time two output ramps collide.  Callers comparing against simulated
//! settle times add a margin of one femtosecond per recorded output
//! transition (see [`StaReport::settle_bound_with_margin`]) — in practice
//! nanometres of slack against picoseconds of path delay.
//!
//! Sequential circuits are **register-segmented**: a register's output is a
//! level source (arrival zero, slew bounded by its worst clock-to-Q arc)
//! and arrivals at its D/EN/CK pins end the segment — nothing propagates
//! through the register within a cycle.  The per-net bounds therefore cover
//! each register-bounded combinational cone, which is exactly the
//! single-cycle settling question, and register feedback loops analyse
//! cleanly instead of deadlocking the propagation.
//!
//! The corpus-wide differential test (`tests/sta_differential.rs` at the
//! workspace root) holds this invariant on every corpus entry: simulated
//! last-settle under the Conventional model never exceeds the STA bound.
//!
//! # Example
//!
//! ```
//! use halotis_netlist::{generators, technology};
//! use halotis_sim::{sta, CompiledCircuit};
//!
//! let netlist = generators::ripple_carry_adder(4);
//! let library = technology::cmos06();
//! let circuit = CompiledCircuit::compile(&netlist, &library)?;
//! let report = sta::analyze(&circuit, library.default_input_slew());
//! // The carry chain is the critical path: it ends at the last carry out.
//! let worst = report.worst_net();
//! assert!(report.arrival(worst) >= report.arrival(netlist.net_id("s0").unwrap()));
//! assert!(!report.critical_path().is_empty());
//! # Ok::<(), halotis_sim::SimulationError>(())
//! ```

use halotis_core::{Edge, NetId, PinRef, Time, TimeDelta};
use halotis_delay::nominal;
use halotis_netlist::graph::GraphEdge;
use halotis_waveform::Stimulus;

use crate::compiled::CompiledCircuit;

/// The result of a static-timing pass: per-net arrival/slew bounds and the
/// critical path that set the worst one.  Produced by [`analyze`].
#[derive(Clone, Debug)]
pub struct StaReport {
    /// Upper bound on the end of activity per net, relative to the end of
    /// the triggering primary-input ramp.
    arrival: Vec<TimeDelta>,
    /// Upper bound on the output-ramp duration per net (exact per arc: the
    /// conventional model's output slew is load-only).
    slew: Vec<TimeDelta>,
    /// The graph edge that set each net's arrival bound (`None` for primary
    /// inputs).
    predecessor: Vec<Option<GraphEdge>>,
    /// The net with the largest arrival bound.
    worst: NetId,
}

impl StaReport {
    /// The arrival-bound of one net: activity on it ends at most this long
    /// after the primary-input ramp that triggered it ends.
    pub fn arrival(&self, net: NetId) -> TimeDelta {
        self.arrival[net.index()]
    }

    /// The output-slew bound of one net.
    pub fn slew(&self, net: NetId) -> TimeDelta {
        self.slew[net.index()]
    }

    /// The net with the largest arrival bound.
    pub fn worst_net(&self) -> NetId {
        self.worst
    }

    /// The largest arrival bound — the topological critical-path delay.
    pub fn worst_arrival(&self) -> TimeDelta {
        self.arrival[self.worst.index()]
    }

    /// The critical path as graph edges from a primary input to
    /// [`worst_net`](Self::worst_net), in propagation order.
    pub fn critical_path(&self) -> Vec<GraphEdge> {
        let mut path = Vec::new();
        let mut net = self.worst;
        while let Some(edge) = self.predecessor[net.index()] {
            path.push(edge);
            net = edge.source;
        }
        path.reverse();
        path
    }

    /// Absolute settle bound for a stimulus: no net activity after
    /// `stimulus.last_activity() + worst_arrival()`.  A stimulus with no
    /// transitions at all anchors the bound at time zero (initial
    /// settlement only).
    pub fn settle_bound(&self, stimulus: &Stimulus) -> Time {
        stimulus.last_activity().unwrap_or(Time::ZERO) + self.worst_arrival()
    }

    /// [`settle_bound`](Self::settle_bound) plus one femtosecond per
    /// recorded output transition, covering the engine's worst-case
    /// accumulation of `+1 fs` monotonicity nudges (see the module docs).
    pub fn settle_bound_with_margin(&self, stimulus: &Stimulus, output_transitions: usize) -> Time {
        self.settle_bound(stimulus) + TimeDelta::from_fs(output_transitions as i64)
    }
}

/// The worst-case arrival/slew increment of one graph edge: how much later
/// than its input-net bound activity on the target net can end, and how
/// long the resulting output ramp can be.
fn edge_increment(
    circuit: &CompiledCircuit<'_>,
    edge: GraphEdge,
    input_slew_bound: TimeDelta,
) -> (TimeDelta, TimeDelta) {
    let load = circuit.gate_load(edge.gate);
    let timing = circuit.pin_timing(PinRef::new(edge.gate, edge.pin));
    let mut worst_increment = TimeDelta::ZERO;
    let mut worst_slew = TimeDelta::ZERO;
    for direction in [Edge::Rise, Edge::Fall] {
        let arc = timing.for_edge(direction);
        // tp0 is linear in the input slew; realisable slews lie in
        // [0, input_slew_bound], so the max is at an endpoint.
        let at_zero = nominal::timing(arc, load, TimeDelta::ZERO);
        let at_bound = nominal::timing(arc, load, input_slew_bound);
        let delay = at_zero.delay.max(at_bound.delay);
        let tau = at_zero.output_slew.max(at_bound.output_slew);
        // Mirror ramp_start's integer arithmetic exactly: the ramp begins
        // max(0, delay - tau/2) after the event and ends tau later.
        let half = tau / 2;
        let start_offset = if delay > half {
            delay - half
        } else {
            TimeDelta::ZERO
        };
        worst_increment = worst_increment.max(start_offset + tau);
        worst_slew = worst_slew.max(tau);
    }
    (worst_increment, worst_slew)
}

/// Runs the static-timing pass on a compiled circuit.
///
/// `input_slew` bounds the slew of every primary-input transition the
/// stimulus will carry — pass the stimulus's slew (usually
/// `library.default_input_slew()`); a larger value only loosens the bound.
///
/// The pass is a Kahn propagation over [`CompiledCircuit::fanout_csr`]:
/// primary-input nets start at zero, every gate finalises its output once
/// all input nets are bounded, and each edge's increment is the worst of
/// its rise/fall arcs (see the module docs for why this bounds the
/// event-driven engine).  Runs in O(nets + pins).
pub fn analyze(circuit: &CompiledCircuit<'_>, input_slew: TimeDelta) -> StaReport {
    let netlist = circuit.netlist();
    let csr = circuit.fanout_csr();
    let net_count = netlist.net_count();

    let mut arrival = vec![TimeDelta::ZERO; net_count];
    let mut slew = vec![TimeDelta::ZERO; net_count];
    let mut predecessor: Vec<Option<GraphEdge>> = vec![None; net_count];

    // A combinational gate finalises its output net once every input net is
    // bounded.  Sequential gates never finalise through their inputs:
    // their outputs are level sources (clock-to-Q launches a fresh ramp
    // each cycle), which is what makes register feedback analysable — the
    // pass bounds each register-bounded combinational segment.
    let mut pending_inputs: Vec<u32> = netlist
        .gates()
        .iter()
        .map(|gate| gate.inputs().len() as u32)
        .collect();

    let mut worklist: Vec<NetId> = netlist.primary_inputs().to_vec();
    for &input in netlist.primary_inputs() {
        slew[input.index()] = input_slew;
    }
    for (index, gate) in netlist.gates().iter().enumerate() {
        if !gate.kind().is_sequential() {
            continue;
        }
        // The register's output ramp duration is bounded by the worst arc
        // over its pins (clock, data, reset all launch at most one Q ramp).
        let gate_id = halotis_core::GateId::from_usize(index);
        let load = circuit.gate_load(gate_id);
        let mut tau_bound = TimeDelta::ZERO;
        for pin in 0..gate.inputs().len() {
            let timing = circuit.pin_timing(PinRef::new(gate_id, pin as u32));
            for direction in [Edge::Rise, Edge::Fall] {
                let arc = timing.for_edge(direction);
                let at_zero = nominal::timing(arc, load, TimeDelta::ZERO);
                let at_bound = nominal::timing(arc, load, input_slew);
                tau_bound = tau_bound.max(at_zero.output_slew.max(at_bound.output_slew));
            }
        }
        slew[gate.output().index()] = tau_bound;
        worklist.push(gate.output());
    }

    let mut finalized = worklist.len();
    while let Some(net) = worklist.pop() {
        let net_arrival = arrival[net.index()];
        let net_slew = slew[net.index()];
        for &edge in csr.outgoing(net) {
            let gate = edge.gate.index();
            if netlist.gates()[gate].kind().is_sequential() {
                // Arrival at a register's D/EN/CK pin does not propagate to
                // Q within the cycle; the segment ends here.
                continue;
            }
            let (increment, tau) = edge_increment(circuit, edge, net_slew);
            let candidate = net_arrival + increment;
            let target = edge.target.index();
            if candidate > arrival[target] || predecessor[target].is_none() {
                arrival[target] = candidate;
                predecessor[target] = Some(edge);
            }
            slew[target] = slew[target].max(tau);
            pending_inputs[gate] -= 1;
            if pending_inputs[gate] == 0 {
                worklist.push(netlist.gates()[gate].output());
                finalized += 1;
            }
        }
    }
    debug_assert_eq!(
        finalized, net_count,
        "compilation rejects combinational loops, so every register-bounded \
         segment is acyclic"
    );

    let worst = (0..net_count)
        .map(NetId::from_usize)
        .max_by_key(|net| arrival[net.index()])
        .expect("netlists have at least one net");
    StaReport {
        arrival,
        slew,
        predecessor,
        worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_core::LogicLevel;
    use halotis_netlist::{generators, technology};
    use halotis_waveform::Stimulus;

    use crate::config::SimulationConfig;
    use crate::observer::SimObserver;

    #[test]
    fn deeper_chains_have_larger_bounds() {
        let library = technology::cmos06();
        let slew = library.default_input_slew();
        let short = generators::inverter_chain(2);
        let long = generators::inverter_chain(8);
        let short_sta = analyze(&CompiledCircuit::compile(&short, &library).unwrap(), slew);
        let long_sta = analyze(&CompiledCircuit::compile(&long, &library).unwrap(), slew);
        assert!(long_sta.worst_arrival() > short_sta.worst_arrival());
        assert_eq!(long_sta.critical_path().len(), 8);
    }

    #[test]
    fn critical_path_walks_gate_by_gate_from_a_primary_input() {
        let netlist = generators::ripple_carry_adder(4);
        let library = technology::cmos06();
        let circuit = CompiledCircuit::compile(&netlist, &library).unwrap();
        let report = analyze(&circuit, library.default_input_slew());
        let path = report.critical_path();
        assert!(!path.is_empty());
        let first = path.first().unwrap();
        assert!(netlist.primary_inputs().contains(&first.source));
        assert_eq!(path.last().unwrap().target, report.worst_net());
        for pair in path.windows(2) {
            assert_eq!(pair[0].target, pair[1].source);
        }
    }

    #[test]
    fn larger_input_slew_cannot_tighten_the_bound() {
        let netlist = generators::ripple_carry_adder(3);
        let library = technology::cmos06();
        let circuit = CompiledCircuit::compile(&netlist, &library).unwrap();
        let tight = analyze(&circuit, TimeDelta::ZERO);
        let loose = analyze(&circuit, library.default_input_slew() * 4);
        assert!(loose.worst_arrival() >= tight.worst_arrival());
    }

    #[test]
    fn register_feedback_is_segmented_not_rejected() {
        use halotis_netlist::{CellKind, NetlistBuilder};

        let mut builder = NetlistBuilder::new("toggle");
        let ck = builder.add_input("ck");
        let q = builder.add_net("q");
        let nq = builder.add_net("nq");
        builder.add_gate(CellKind::Inv, "g_inv", &[q], nq).unwrap();
        builder
            .add_gate(CellKind::Dff, "g_ff", &[nq, ck], q)
            .unwrap();
        builder.mark_output(q);
        let netlist = builder.build().unwrap();
        let library = technology::cmos06();
        let circuit = CompiledCircuit::compile(&netlist, &library).unwrap();
        let report = analyze(&circuit, library.default_input_slew());
        let nq = netlist.net_id("nq").unwrap();
        let q = netlist.net_id("q").unwrap();
        // Q is a segment source (arrival zero, non-trivial launch slew); the
        // inverter behind it is a bounded one-gate segment.
        assert_eq!(report.arrival(q), TimeDelta::ZERO);
        assert!(report.slew(q) > TimeDelta::ZERO);
        assert!(report.arrival(nq) > TimeDelta::ZERO);
    }

    /// The soundness contract on a small circuit: simulated settle under
    /// both built-in models stays below the STA bound.  (The corpus-wide
    /// version lives in `tests/sta_differential.rs`.)
    #[test]
    fn simulated_settle_respects_the_bound() {
        struct LastEnd(Time);
        impl SimObserver for LastEnd {
            fn on_transition(&mut self, _net: NetId, transition: &halotis_waveform::Transition) {
                self.0 = self.0.max(transition.end());
            }
        }

        let netlist = generators::ripple_carry_adder(4);
        let library = technology::cmos06();
        let circuit = CompiledCircuit::compile(&netlist, &library).unwrap();
        let report = analyze(&circuit, library.default_input_slew());

        let mut stimulus = Stimulus::new(library.default_input_slew());
        for &input in netlist.primary_inputs() {
            stimulus.set_initial(netlist.net(input).name(), LogicLevel::Low);
        }
        for (index, &input) in netlist.primary_inputs().iter().enumerate() {
            stimulus.drive(
                netlist.net(input).name(),
                Time::from_ns(1.0 + 0.2 * index as f64),
                LogicLevel::High,
            );
        }

        for config in [SimulationConfig::ddm(), SimulationConfig::cdm()] {
            let mut state = circuit.new_state();
            let mut last = LastEnd(Time::ZERO);
            let stats = circuit
                .run_observed(&mut state, &stimulus, &config, &mut last)
                .unwrap();
            let bound = report.settle_bound_with_margin(&stimulus, stats.output_transitions);
            assert!(
                last.0 <= bound,
                "settle {:?} exceeds STA bound {:?}",
                last.0,
                bound
            );
        }
    }
}
