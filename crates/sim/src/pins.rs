//! Dense indexing of gate input pins.
//!
//! The HALOTIS queue keeps per-input state (the pending-event slot of
//! Fig. 4), so it needs a dense `0..pin_count` index for every
//! [`PinRef`] of the netlist.  [`PinMap`] provides that mapping via a prefix
//! sum over the gates' input counts.

use halotis_core::{GateId, PinRef};
use halotis_netlist::Netlist;

/// Dense pin indexing for one netlist.
///
/// # Example
///
/// ```
/// use halotis_core::PinRef;
/// use halotis_netlist::generators;
/// use halotis_sim::pins::PinMap;
///
/// let netlist = generators::c17();
/// let pins = PinMap::new(&netlist);
/// assert_eq!(pins.len(), 12); // six 2-input NAND gates
/// let first_gate = netlist.gates()[0].id();
/// assert_eq!(pins.index(PinRef::new(first_gate, 0)), 0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PinMap {
    offsets: Vec<usize>,
    total: usize,
    /// Pin blocks freed by gate removal, as `(offset, count)` — reused by
    /// later allocations of the exact same size.  The arena never shrinks:
    /// dense indices of surviving pins stay stable across edits, which is
    /// what lets the compiled tables patch rows in place.
    free: Vec<(usize, usize)>,
}

impl PinMap {
    /// Builds the pin map of a netlist.
    pub fn new(netlist: &Netlist) -> Self {
        let mut offsets = Vec::with_capacity(netlist.gate_count());
        let mut total = 0usize;
        for gate in netlist.gates() {
            offsets.push(total);
            total += gate.inputs().len();
        }
        PinMap {
            offsets,
            total,
            free: Vec::new(),
        }
    }

    /// The pin arena size: every dense index is `< len()`.  After edits this
    /// may exceed the live pin count — freed blocks stay in the arena as
    /// holes awaiting reuse.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Assigns a pin block to a gate appended at the end of the gate id
    /// space, reusing a freed block of the exact size when one exists, and
    /// returns the block's first dense index.
    pub(crate) fn allocate_gate(&mut self, pin_count: usize) -> usize {
        let offset = match self.free.iter().position(|&(_, count)| count == pin_count) {
            Some(slot) => self.free.swap_remove(slot).0,
            None => {
                let offset = self.total;
                self.total += pin_count;
                offset
            }
        };
        self.offsets.push(offset);
        offset
    }

    /// Releases a gate's pin block (the block becomes a reusable hole) and
    /// mirrors the netlist's `swap_remove` renumbering: the last gate's
    /// offset entry moves into the freed slot.
    pub(crate) fn free_gate(&mut self, gate: GateId, pin_count: usize) {
        let offset = self.offsets[gate.index()];
        if pin_count > 0 {
            self.free.push((offset, pin_count));
        }
        self.offsets.swap_remove(gate.index());
    }

    /// `true` when the netlist has no gate input pins.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The dense index of a pin.
    pub fn index(&self, pin: PinRef) -> usize {
        self.offsets[pin.gate().index()] + pin.input_index()
    }

    /// The first dense index of a gate's pins (its pin block start).
    pub fn gate_offset(&self, gate: GateId) -> usize {
        self.offsets[gate.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_netlist::generators;

    #[test]
    fn indices_are_dense_and_unique() {
        let netlist = generators::multiplier(3, 3);
        let pins = PinMap::new(&netlist);
        let mut seen = vec![false; pins.len()];
        for gate in netlist.gates() {
            for input in 0..gate.inputs().len() {
                let index = pins.index(PinRef::new(gate.id(), input as u32));
                assert!(!seen[index], "index {index} assigned twice");
                seen[index] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn allocator_reuses_freed_blocks_of_matching_size() {
        let netlist = generators::c17();
        let mut pins = PinMap::new(&netlist);
        let arena = pins.len();
        let last = GateId::from_usize(netlist.gate_count() - 1);
        let freed_offset = pins.gate_offset(last);
        pins.free_gate(last, 2);
        // A same-size allocation reuses the hole; the arena does not grow.
        let offset = pins.allocate_gate(2);
        assert_eq!(offset, freed_offset);
        assert_eq!(pins.len(), arena);
        // A different-size allocation appends instead.
        let three = pins.allocate_gate(3);
        assert_eq!(three, arena);
        assert_eq!(pins.len(), arena + 3);
    }

    #[test]
    fn free_gate_follows_swap_remove_renumbering() {
        let netlist = generators::c17();
        let mut pins = PinMap::new(&netlist);
        let first = netlist.gates()[0].id();
        let last = netlist.gates()[netlist.gate_count() - 1].id();
        let last_offset = pins.gate_offset(last);
        pins.free_gate(first, 2);
        // The old last gate now answers under the freed gate's id.
        assert_eq!(pins.gate_offset(first), last_offset);
    }

    #[test]
    fn gate_offsets_are_prefix_sums() {
        let netlist = generators::c17();
        let pins = PinMap::new(&netlist);
        let mut expected = 0;
        for gate in netlist.gates() {
            assert_eq!(pins.gate_offset(gate.id()), expected);
            expected += gate.inputs().len();
        }
        assert_eq!(pins.len(), expected);
        assert!(!pins.is_empty());
    }
}
