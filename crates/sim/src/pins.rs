//! Dense indexing of gate input pins.
//!
//! The HALOTIS queue keeps per-input state (the pending-event slot of
//! Fig. 4), so it needs a dense `0..pin_count` index for every
//! [`PinRef`] of the netlist.  [`PinMap`] provides that mapping via a prefix
//! sum over the gates' input counts.

use halotis_core::{GateId, PinRef};
use halotis_netlist::Netlist;

/// Dense pin indexing for one netlist.
///
/// # Example
///
/// ```
/// use halotis_core::PinRef;
/// use halotis_netlist::generators;
/// use halotis_sim::pins::PinMap;
///
/// let netlist = generators::c17();
/// let pins = PinMap::new(&netlist);
/// assert_eq!(pins.len(), 12); // six 2-input NAND gates
/// let first_gate = netlist.gates()[0].id();
/// assert_eq!(pins.index(PinRef::new(first_gate, 0)), 0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PinMap {
    offsets: Vec<usize>,
    total: usize,
}

impl PinMap {
    /// Builds the pin map of a netlist.
    pub fn new(netlist: &Netlist) -> Self {
        let mut offsets = Vec::with_capacity(netlist.gate_count());
        let mut total = 0usize;
        for gate in netlist.gates() {
            offsets.push(total);
            total += gate.inputs().len();
        }
        PinMap { offsets, total }
    }

    /// Total number of gate input pins.
    pub fn len(&self) -> usize {
        self.total
    }

    /// `true` when the netlist has no gate input pins.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The dense index of a pin.
    pub fn index(&self, pin: PinRef) -> usize {
        self.offsets[pin.gate().index()] + pin.input_index()
    }

    /// The first dense index of a gate's pins (its pin block start).
    pub fn gate_offset(&self, gate: GateId) -> usize {
        self.offsets[gate.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halotis_netlist::generators;

    #[test]
    fn indices_are_dense_and_unique() {
        let netlist = generators::multiplier(3, 3);
        let pins = PinMap::new(&netlist);
        let mut seen = vec![false; pins.len()];
        for gate in netlist.gates() {
            for input in 0..gate.inputs().len() {
                let index = pins.index(PinRef::new(gate.id(), input as u32));
                assert!(!seen[index], "index {index} assigned twice");
                seen[index] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn gate_offsets_are_prefix_sums() {
        let netlist = generators::c17();
        let pins = PinMap::new(&netlist);
        let mut expected = 0;
        for gate in netlist.gates() {
            assert_eq!(pins.gate_offset(gate.id()), expected);
            expected += gate.inputs().len();
        }
        assert_eq!(pins.len(), expected);
        assert!(!pins.is_empty());
    }
}
