//! Equivalence suite for the compile-once/run-many core.
//!
//! The refactor's contract is *speed only, no behaviour change*: for any
//! netlist, stimulus and configuration, the three ways of running a
//! simulation must produce bit-identical waveforms and statistics —
//!
//! 1. the single-shot path (`Simulator::run`, compiling per invocation),
//! 2. the compiled path with a **reused** state arena
//!    (`CompiledCircuit::run_with`, the arena deliberately dirtied by an
//!    unrelated run first, so an incomplete `reset()` would be caught),
//! 3. the parallel batch path (`BatchRunner::run`).
//!
//! The properties drive randomized circuits from every generator family the
//! repository uses — inverter chains, the ISCAS c17 benchmark, the Fig. 1
//! threshold circuit with random thresholds, and small array multipliers —
//! under both the degradation and the conventional delay model.

use halotis::core::{LogicLevel, Time, TimeDelta};
use halotis::netlist::{generators, technology, Library, Netlist};
use halotis::sim::{
    BatchRunner, CompiledCircuit, Scenario, SimulationConfig, SimulationResult, Simulator,
};
use halotis::waveform::Stimulus;
use proptest::prelude::*;

/// Asserts that two results carry identical statistics and identical raw
/// waveforms on every net.
fn assert_identical(context: &str, reference: &SimulationResult, candidate: &SimulationResult) {
    assert_eq!(
        reference.stats(),
        candidate.stats(),
        "{context}: statistics diverge"
    );
    assert_eq!(
        reference.model(),
        candidate.model(),
        "{context}: model labels diverge"
    );
    for (name, waveform) in reference.waveforms().iter() {
        assert_eq!(
            Some(waveform),
            candidate.waveform(name),
            "{context}: waveform of net {name} diverges"
        );
    }
    assert_eq!(
        reference.waveforms().len(),
        candidate.waveforms().len(),
        "{context}: net sets diverge"
    );
}

/// Runs `stimulus` through the single-shot, reused-arena and batch paths
/// under both delay models and cross-checks all of them.
fn check_all_paths(context: &str, netlist: &Netlist, library: &Library, stimulus: &Stimulus) {
    let simulator = Simulator::new(netlist, library);
    let circuit = CompiledCircuit::compile(netlist, library).expect("circuit compiles");
    let mut state = circuit.new_state();

    let mut scenarios = Vec::new();
    let mut references = Vec::new();
    for config in [SimulationConfig::ddm(), SimulationConfig::cdm()] {
        let single_shot = simulator
            .run(stimulus, &config)
            .expect("single-shot run succeeds");

        // Dirty the arena with the *other* model first so a stale-state bug
        // cannot hide behind identical consecutive runs.
        let other = config.clone().model(match config.model.kind() {
            Some(halotis::delay::DelayModelKind::Degradation) => {
                halotis::delay::DelayModelKind::Conventional
            }
            _ => halotis::delay::DelayModelKind::Degradation,
        });
        circuit
            .run_with(&mut state, stimulus, &other)
            .expect("arena-dirtying run succeeds");
        let reused = circuit
            .run_with(&mut state, stimulus, &config)
            .expect("reused-arena run succeeds");
        assert_identical(
            &format!("{context} [{} reused arena]", config.model),
            &single_shot,
            &reused,
        );

        scenarios.push(Scenario::new(
            format!("{}", config.model),
            stimulus.clone(),
            config,
        ));
        references.push(single_shot);
    }

    let report = BatchRunner::with_threads(4).run(&circuit, &scenarios);
    assert_eq!(report.failed(), 0, "{context}: batch scenarios failed");
    for (reference, outcome) in references.iter().zip(report.outcomes()) {
        assert_identical(
            &format!("{context} [batch {}]", outcome.label),
            reference,
            outcome.result.as_ref().expect("batch run succeeds"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn inverter_chain_pulses_are_path_independent(
        stages in 1usize..9,
        edge_ns in 0.5f64..3.0,
        width_ps in 40.0f64..2500.0,
    ) {
        let netlist = generators::inverter_chain(stages);
        let library = technology::cmos06();
        let mut stimulus = Stimulus::new(library.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        stimulus.drive("in", Time::from_ns(edge_ns), LogicLevel::High);
        stimulus.drive(
            "in",
            Time::from_ns(edge_ns) + TimeDelta::from_ps(width_ps),
            LogicLevel::Low,
        );
        check_all_paths(
            &format!("chain({stages}) pulse {width_ps:.0}ps"),
            &netlist,
            &library,
            &stimulus,
        );
    }

    #[test]
    fn c17_random_toggles_are_path_independent(
        offsets_ps in proptest::collection::vec(0.0f64..4000.0, 5),
        polarity in 0u8..32,
    ) {
        let netlist = generators::c17();
        let library = technology::cmos06();
        let mut stimulus = Stimulus::new(library.default_input_slew());
        for (index, &input) in netlist.primary_inputs().iter().enumerate() {
            let name = netlist.net(input).name().to_string();
            let initial = if polarity & (1 << index) != 0 {
                LogicLevel::High
            } else {
                LogicLevel::Low
            };
            stimulus.set_initial(&name, initial);
            stimulus.drive(
                &name,
                Time::from_ns(1.0) + TimeDelta::from_ps(offsets_ps[index % offsets_ps.len()]),
                if initial == LogicLevel::High {
                    LogicLevel::Low
                } else {
                    LogicLevel::High
                },
            );
        }
        check_all_paths("c17 random toggles", &netlist, &library, &stimulus);
    }

    #[test]
    fn figure1_random_thresholds_are_path_independent(
        low_vt in 0.08f64..0.40,
        high_vt in 0.60f64..0.92,
        width_ps in 100.0f64..1500.0,
    ) {
        let (netlist, _nets) = generators::figure1(low_vt, high_vt);
        let library = technology::cmos06();
        let mut stimulus = Stimulus::new(library.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
        stimulus.drive(
            "in",
            Time::from_ns(1.0) + TimeDelta::from_ps(width_ps),
            LogicLevel::Low,
        );
        check_all_paths(
            &format!("figure1({low_vt:.2},{high_vt:.2}) pulse {width_ps:.0}ps"),
            &netlist,
            &library,
            &stimulus,
        );
    }

    #[test]
    fn multiplier_vectors_are_path_independent(
        bits in 2usize..4,
        a in 0u64..16,
        b in 0u64..16,
        a2 in 0u64..16,
        b2 in 0u64..16,
    ) {
        let netlist = generators::multiplier(bits, bits);
        let ports = generators::MultiplierPorts::new(bits, bits);
        let library = technology::cmos06();
        let mask = (1u64 << bits) - 1;
        let mut stimulus = Stimulus::new(library.default_input_slew());
        for bit in ports.a_refs().iter().chain(ports.b_refs().iter()) {
            stimulus.set_initial(*bit, LogicLevel::Low);
        }
        stimulus.drive_bus_value(&ports.a_refs(), a & mask, Time::from_ns(1.0));
        stimulus.drive_bus_value(&ports.b_refs(), b & mask, Time::from_ns(1.0));
        stimulus.drive_bus_value(&ports.a_refs(), a2 & mask, Time::from_ns(6.0));
        stimulus.drive_bus_value(&ports.b_refs(), b2 & mask, Time::from_ns(6.0));
        check_all_paths(
            &format!("multiplier({bits}x{bits}) {a:X}x{b:X} then {a2:X}x{b2:X}"),
            &netlist,
            &library,
            &stimulus,
        );
    }
}

/// The deterministic fixed-seed cousin of the properties above: the exact
/// Table 1 workload, checked end to end (this is the configuration the
/// paper's numbers come from, so it must never drift).
#[test]
fn table1_workload_is_path_independent() {
    use halotis::experiments::{multiplier_fixture, multiplier_stimulus, SEQUENCE_FIG6};
    let fixture = multiplier_fixture();
    let stimulus = multiplier_stimulus(&fixture.ports, SEQUENCE_FIG6);
    check_all_paths(
        "table1 fig6 sequence",
        &fixture.netlist,
        &fixture.library,
        &stimulus,
    );
}
