//! Property tests for the HALOTIS event queue (`halotis::sim::queue`).
//!
//! The queue implements the per-input insert/cancel rule of the paper's
//! Fig. 4: a new event on an input that already has a pending event either
//! appends (if strictly later) or annihilates with the *latest* pending
//! event (the runt pulse never existed for that input).  These tests drive
//! the queue with arbitrary schedules and check it against both global
//! invariants and an executable reference model of the flowchart.

use halotis::core::{GateId, LogicLevel, PinRef, Time, TimeDelta};
use halotis::sim::event::Event;
use halotis::sim::queue::{EventQueue, ScheduleOutcome};
use proptest::prelude::*;

const PINS: usize = 8;

fn event(time_fs: i64, pin: usize) -> Event {
    Event::new(
        Time::from_fs(time_fs),
        PinRef::new(GateId::new(pin as u32), 0),
        LogicLevel::High,
        TimeDelta::from_ps(100.0),
    )
}

/// Executable reference model of the Fig. 4 rule: per input, keep pending
/// events in arrival order; a candidate at `t` later than the latest pending
/// event is appended, otherwise it annihilates with exactly that latest
/// pending event.  Returns the surviving events as `(time, serial, pin)`,
/// where `serial` numbers insertions globally (the queue's FIFO tie-break).
fn reference_schedule(schedule: &[(usize, i64)]) -> Vec<(i64, u64, usize)> {
    let mut pending: Vec<Vec<(i64, u64)>> = vec![Vec::new(); PINS];
    let mut serial = 0u64;
    for &(pin, time) in schedule {
        match pending[pin].last() {
            Some(&(previous, _)) if time <= previous => {
                pending[pin].pop();
            }
            _ => {
                pending[pin].push((time, serial));
                serial += 1;
            }
        }
    }
    let mut survivors: Vec<(i64, u64, usize)> = pending
        .iter()
        .enumerate()
        .flat_map(|(pin, events)| {
            events
                .iter()
                .map(move |&(time, serial)| (time, serial, pin))
        })
        .collect();
    survivors.sort();
    survivors
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The queue never pops out of global time order, whatever interleaving
    /// of inserts and cancellations the schedule produces.
    #[test]
    fn pops_never_go_backwards_in_time(
        schedule in proptest::collection::vec((0usize..PINS, 0i64..10_000), 1..200),
    ) {
        let mut queue = EventQueue::new(PINS);
        for &(pin, time) in &schedule {
            queue.schedule(pin, event(time, pin));
        }
        let mut previous = Time::MIN;
        while let Some(popped) = queue.pop() {
            prop_assert!(popped.time >= previous, "pop went backwards in time");
            previous = popped.time;
        }
    }

    /// Per input, surviving events always come out strictly increasing: the
    /// cancellation rule forbids two pending events at the same instant on
    /// one input.
    #[test]
    fn per_pin_pops_strictly_increase(
        schedule in proptest::collection::vec((0usize..PINS, 0i64..10_000), 1..200),
    ) {
        let mut queue = EventQueue::new(PINS);
        for &(pin, time) in &schedule {
            queue.schedule(pin, event(time, pin));
        }
        let mut last_per_pin = [Time::MIN; PINS];
        while let Some(popped) = queue.pop() {
            let pin = popped.pin.gate().index();
            prop_assert!(
                popped.time > last_per_pin[pin],
                "same-input events must pop at strictly increasing times"
            );
            last_per_pin[pin] = popped.time;
        }
    }

    /// The queue agrees exactly with the executable Fig. 4 reference model:
    /// a cancellation removes exactly the latest pending event on that input
    /// and nothing else, on any input.
    #[test]
    fn queue_matches_reference_model(
        schedule in proptest::collection::vec((0usize..PINS, 0i64..10_000), 1..200),
    ) {
        let mut queue = EventQueue::new(PINS);
        for &(pin, time) in &schedule {
            queue.schedule(pin, event(time, pin));
        }
        let expected = reference_schedule(&schedule);
        prop_assert_eq!(queue.len(), expected.len());
        let mut popped = Vec::new();
        while let Some(event) = queue.pop() {
            popped.push((event.time.as_fs(), event.pin.gate().index()));
        }
        let expected: Vec<(i64, usize)> =
            expected.into_iter().map(|(time, _, pin)| (time, pin)).collect();
        prop_assert_eq!(popped, expected);
    }

    /// Bookkeeping invariant: every scheduled event is either popped or
    /// accounted for by exactly one cancellation.
    #[test]
    fn scheduled_minus_filtered_equals_popped(
        schedule in proptest::collection::vec((0usize..PINS, 0i64..10_000), 1..200),
    ) {
        let mut queue = EventQueue::new(PINS);
        let mut outcomes = (0usize, 0usize);
        for &(pin, time) in &schedule {
            match queue.schedule(pin, event(time, pin)) {
                ScheduleOutcome::Inserted => outcomes.0 += 1,
                ScheduleOutcome::CancelledPrevious => outcomes.1 += 1,
            }
        }
        prop_assert_eq!(queue.scheduled(), outcomes.0);
        prop_assert_eq!(queue.filtered(), outcomes.1);
        let popped = std::iter::from_fn(|| queue.pop()).count();
        prop_assert_eq!(queue.scheduled() - queue.filtered(), popped);
    }
}

/// Directed Fig. 4 runt-pulse scenario: the cancelling event removes exactly
/// the latest pending event on its input, leaving earlier events on the same
/// input and every other input untouched.
#[test]
fn cancelling_removes_exactly_the_pending_event() {
    let mut queue = EventQueue::new(2);
    assert_eq!(
        queue.schedule(0, event(2_000, 0)),
        ScheduleOutcome::Inserted
    );
    assert_eq!(
        queue.schedule(0, event(5_000, 0)),
        ScheduleOutcome::Inserted
    );
    assert_eq!(
        queue.schedule(1, event(3_000, 1)),
        ScheduleOutcome::Inserted
    );
    // The runt: arrives before the pending 5 000 fs event on input 0, so the
    // two annihilate — per Fig. 4 the pulse never existed for input 0.
    assert_eq!(
        queue.schedule(0, event(4_000, 0)),
        ScheduleOutcome::CancelledPrevious
    );
    assert_eq!(queue.len(), 2);
    assert_eq!(queue.filtered(), 1);
    let popped: Vec<(i64, usize)> = std::iter::from_fn(|| queue.pop())
        .map(|e| (e.time.as_fs(), e.pin.gate().index()))
        .collect();
    assert_eq!(popped, vec![(2_000, 0), (3_000, 1)]);
}
