//! Property tests for the HALOTIS event queue (`halotis::sim::queue`).
//!
//! The queue implements the per-input insert/cancel rule of the paper's
//! Fig. 4: a new event on an input that already has a pending event either
//! appends (if strictly later) or annihilates with the *latest* pending
//! event (the runt pulse never existed for that input).  These tests drive
//! the queue with arbitrary schedules and check it against both global
//! invariants and an executable reference model of the flowchart — and
//! against the retired `BinaryHeap` + `HashSet` implementation
//! ([`reference::ReferenceEventQueue`]), which is kept verbatim as the
//! executable specification of the ordering contract.
//!
//! Drains go through [`EventQueue::pop_checked`]: it asserts in **every**
//! build profile that each popped entry matches its pin's pending-list
//! front (plain `pop` only `debug_assert`s it), so `cargo test --release`
//! still exercises the invariant that ties the time-ordered store to the
//! per-pin Fig. 4 bookkeeping.

use halotis::core::{GateId, LogicLevel, PinRef, Time, TimeDelta};
use halotis::sim::event::Event;
use halotis::sim::queue::reference::ReferenceEventQueue;
use halotis::sim::queue::{EventQueue, ScheduleOutcome};
use proptest::prelude::*;

const PINS: usize = 8;

fn event(time_fs: i64, pin: usize) -> Event {
    Event::new(
        Time::from_fs(time_fs),
        PinRef::new(GateId::new(pin as u32), 0),
        LogicLevel::High,
        TimeDelta::from_ps(100.0),
    )
}

/// Executable reference model of the Fig. 4 rule: per input, keep pending
/// events in arrival order; a candidate at `t` later than the latest pending
/// event is appended, otherwise it annihilates with exactly that latest
/// pending event.  Returns the surviving events as `(time, serial, pin)`,
/// where `serial` numbers insertions globally (the queue's FIFO tie-break).
fn reference_schedule(schedule: &[(usize, i64)]) -> Vec<(i64, u64, usize)> {
    let mut pending: Vec<Vec<(i64, u64)>> = vec![Vec::new(); PINS];
    let mut serial = 0u64;
    for &(pin, time) in schedule {
        match pending[pin].last() {
            Some(&(previous, _)) if time <= previous => {
                pending[pin].pop();
            }
            _ => {
                pending[pin].push((time, serial));
                serial += 1;
            }
        }
    }
    let mut survivors: Vec<(i64, u64, usize)> = pending
        .iter()
        .enumerate()
        .flat_map(|(pin, events)| {
            events
                .iter()
                .map(move |&(time, serial)| (time, serial, pin))
        })
        .collect();
    survivors.sort();
    survivors
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The queue never pops out of global time order, whatever interleaving
    /// of inserts and cancellations the schedule produces.
    #[test]
    fn pops_never_go_backwards_in_time(
        schedule in proptest::collection::vec((0usize..PINS, 0i64..10_000), 1..200),
    ) {
        let mut queue = EventQueue::new(PINS);
        for &(pin, time) in &schedule {
            queue.schedule(pin, event(time, pin));
        }
        let mut previous = Time::MIN;
        while let Some(popped) = queue.pop_checked() {
            prop_assert!(popped.time >= previous, "pop went backwards in time");
            previous = popped.time;
        }
    }

    /// Per input, surviving events always come out strictly increasing: the
    /// cancellation rule forbids two pending events at the same instant on
    /// one input.
    #[test]
    fn per_pin_pops_strictly_increase(
        schedule in proptest::collection::vec((0usize..PINS, 0i64..10_000), 1..200),
    ) {
        let mut queue = EventQueue::new(PINS);
        for &(pin, time) in &schedule {
            queue.schedule(pin, event(time, pin));
        }
        let mut last_per_pin = [Time::MIN; PINS];
        while let Some(popped) = queue.pop_checked() {
            let pin = popped.pin.gate().index();
            prop_assert!(
                popped.time > last_per_pin[pin],
                "same-input events must pop at strictly increasing times"
            );
            last_per_pin[pin] = popped.time;
        }
    }

    /// The queue agrees exactly with the executable Fig. 4 reference model:
    /// a cancellation removes exactly the latest pending event on that input
    /// and nothing else, on any input.
    #[test]
    fn queue_matches_reference_model(
        schedule in proptest::collection::vec((0usize..PINS, 0i64..10_000), 1..200),
    ) {
        let mut queue = EventQueue::new(PINS);
        for &(pin, time) in &schedule {
            queue.schedule(pin, event(time, pin));
        }
        let expected = reference_schedule(&schedule);
        prop_assert_eq!(queue.len(), expected.len());
        let mut popped = Vec::new();
        while let Some(event) = queue.pop_checked() {
            popped.push((event.time.as_fs(), event.pin.gate().index()));
        }
        let expected: Vec<(i64, usize)> =
            expected.into_iter().map(|(time, _, pin)| (time, pin)).collect();
        prop_assert_eq!(popped, expected);
    }

    /// Bookkeeping invariant: every scheduled event is either popped or
    /// accounted for by exactly one cancellation.
    #[test]
    fn scheduled_minus_filtered_equals_popped(
        schedule in proptest::collection::vec((0usize..PINS, 0i64..10_000), 1..200),
    ) {
        let mut queue = EventQueue::new(PINS);
        let mut outcomes = (0usize, 0usize);
        for &(pin, time) in &schedule {
            match queue.schedule(pin, event(time, pin)) {
                ScheduleOutcome::Inserted => outcomes.0 += 1,
                ScheduleOutcome::CancelledPrevious => outcomes.1 += 1,
            }
        }
        prop_assert_eq!(queue.scheduled(), outcomes.0);
        prop_assert_eq!(queue.filtered(), outcomes.1);
        let popped = std::iter::from_fn(|| queue.pop_checked()).count();
        prop_assert_eq!(queue.scheduled() - queue.filtered(), popped);
    }
}

/// Feeds the same schedule to the production wheel-backed queue and the
/// retired heap-backed [`ReferenceEventQueue`], popping `drain` times after
/// every `pop_stride`-th schedule call, and asserts both queues agree on
/// every observable: each popped [`Event`] (so equal-time pops must resolve
/// the serial tie-break identically), the live length, and the
/// scheduled/filtered counters.  Returns the events both queues popped.
fn assert_queues_agree(
    pin_count: usize,
    schedule: &[(usize, i64)],
    pop_stride: usize,
) -> Vec<Event> {
    let mut wheel = EventQueue::new(pin_count);
    let mut heap = ReferenceEventQueue::new(pin_count);
    let mut popped = Vec::new();
    let mut compare_pop = |wheel: &mut EventQueue, heap: &mut ReferenceEventQueue| {
        let ours = wheel.pop_checked();
        let reference = heap.pop();
        assert_eq!(ours, reference, "pop order diverged from the heap queue");
        if let Some(event) = ours {
            popped.push(event);
        }
    };
    for (step, &(pin, time)) in schedule.iter().enumerate() {
        let candidate = event(time, pin);
        assert_eq!(
            wheel.schedule(pin, candidate),
            heap.schedule(pin, candidate),
            "schedule outcome diverged at step {step}"
        );
        if pop_stride != 0 && step % pop_stride == pop_stride - 1 {
            compare_pop(&mut wheel, &mut heap);
        }
        assert_eq!(wheel.len(), heap.len());
    }
    loop {
        let before = wheel.len();
        compare_pop(&mut wheel, &mut heap);
        if before == 0 {
            break;
        }
    }
    assert_eq!(wheel.scheduled(), heap.scheduled());
    assert_eq!(wheel.filtered(), heap.filtered());
    assert!(wheel.is_empty() && heap.is_empty());
    popped
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The wheel-backed queue is observationally identical to the retired
    /// binary-heap implementation on arbitrary schedules: same pop order
    /// (including equal-time serial tie-breaks — the narrow time domain
    /// forces collisions), same counters, same lengths throughout.
    #[test]
    fn wheel_queue_matches_heap_reference(
        schedule in proptest::collection::vec((0usize..PINS, 0i64..600), 1..250),
        pop_stride in 0usize..6,
    ) {
        assert_queues_agree(PINS, &schedule, pop_stride);
    }

    /// After `reset()` both implementations behave like fresh queues: serial
    /// numbering restarts, so the second half's equal-time tie-breaks must
    /// again agree event for event.
    #[test]
    fn wheel_queue_matches_heap_reference_after_reset(
        first in proptest::collection::vec((0usize..PINS, 0i64..600), 1..120),
        second in proptest::collection::vec((0usize..PINS, 0i64..600), 1..120),
        pops_before_reset in 0usize..8,
    ) {
        let mut wheel = EventQueue::new(PINS);
        let mut heap = ReferenceEventQueue::new(PINS);
        for &(pin, time) in &first {
            let candidate = event(time, pin);
            prop_assert_eq!(wheel.schedule(pin, candidate), heap.schedule(pin, candidate));
        }
        for _ in 0..pops_before_reset {
            prop_assert_eq!(wheel.pop_checked(), heap.pop());
        }
        wheel.reset();
        heap.reset();
        prop_assert_eq!(wheel.len(), 0);
        prop_assert_eq!(wheel.scheduled(), 0);
        prop_assert_eq!(wheel.filtered(), 0);
        for &(pin, time) in &second {
            let candidate = event(time, pin);
            prop_assert_eq!(wheel.schedule(pin, candidate), heap.schedule(pin, candidate));
        }
        loop {
            let ours = wheel.pop_checked();
            let reference = heap.pop();
            prop_assert_eq!(ours, reference);
            if ours.is_none() {
                break;
            }
        }
        prop_assert_eq!(wheel.scheduled(), heap.scheduled());
        prop_assert_eq!(wheel.filtered(), heap.filtered());
    }
}

/// Wheel-vs-heap equivalence on schedules with *real* timestamp
/// distributions: every corpus circuit is simulated, its net transition
/// times are folded onto a small pin set (so ascending per-net streams
/// interleave into non-monotone per-pin sequences and the Fig. 4
/// cancellation fires), and both queues must agree on the entire run.
/// Synthetic uniform schedules (above) miss the gate-delay clustering that
/// the wheel's bucket geometry is tuned for; this is the distribution the
/// production queue actually serves.
#[test]
fn corpus_circuit_schedules_match_heap_reference() {
    use halotis::corpus::standard_corpus;
    use halotis::netlist::technology;
    use halotis::sim::CompiledCircuit;

    const FOLDED_PINS: usize = 8;
    let library = technology::cmos06();
    let mut checked_entries = 0;
    let mut total_events = 0usize;
    for entry in standard_corpus() {
        // The big ISCAS parses dominate runtime without adding new timestamp
        // shapes; a gate-count cap keeps this test in tier-1 time.
        if entry.netlist.gate_count() > 64 {
            continue;
        }
        let circuit = CompiledCircuit::compile(&entry.netlist, &library).expect("corpus compiles");
        let scenarios = entry.scenarios(&library);
        let scenario = scenarios.first().expect("every corpus entry has scenarios");
        let result = circuit
            .run(&scenario.stimulus, &scenario.config)
            .expect("corpus scenario runs");

        let mut schedule: Vec<(i64, usize, usize)> = Vec::new();
        for (order, (name, waveform)) in result.waveforms().iter().enumerate() {
            let net_index = entry
                .netlist
                .net_id(name)
                .expect("traced nets exist in the netlist")
                .index();
            for transition in waveform.transitions() {
                schedule.push((transition.start().as_fs(), order, net_index % FOLDED_PINS));
            }
        }
        // Causal feed order: by time, then trace order — deterministic, and
        // equal-time events from different nets exercise the serial
        // tie-break with realistic clustering.
        schedule.sort_unstable();
        let schedule: Vec<(usize, i64)> = schedule
            .into_iter()
            .map(|(time, _, pin)| (pin, time))
            .collect();
        if schedule.is_empty() {
            continue;
        }
        total_events += schedule.len();
        assert_queues_agree(FOLDED_PINS, &schedule, 3);
        checked_entries += 1;
    }
    assert!(
        checked_entries >= 5 && total_events > 200,
        "corpus-derived coverage collapsed: {checked_entries} entries, {total_events} events"
    );
}

/// Directed Fig. 4 runt-pulse scenario: the cancelling event removes exactly
/// the latest pending event on its input, leaving earlier events on the same
/// input and every other input untouched.
#[test]
fn cancelling_removes_exactly_the_pending_event() {
    let mut queue = EventQueue::new(2);
    assert_eq!(
        queue.schedule(0, event(2_000, 0)),
        ScheduleOutcome::Inserted
    );
    assert_eq!(
        queue.schedule(0, event(5_000, 0)),
        ScheduleOutcome::Inserted
    );
    assert_eq!(
        queue.schedule(1, event(3_000, 1)),
        ScheduleOutcome::Inserted
    );
    // The runt: arrives before the pending 5 000 fs event on input 0, so the
    // two annihilate — per Fig. 4 the pulse never existed for input 0.
    assert_eq!(
        queue.schedule(0, event(4_000, 0)),
        ScheduleOutcome::CancelledPrevious
    );
    assert_eq!(queue.len(), 2);
    assert_eq!(queue.filtered(), 1);
    let popped: Vec<(i64, usize)> = std::iter::from_fn(|| queue.pop_checked())
        .map(|e| (e.time.as_fs(), e.pin.gate().index()))
        .collect();
    assert_eq!(popped, vec![(2_000, 0), (3_000, 1)]);
}
