//! Cycle-accurate differential guard on sequential simulation.
//!
//! The ISCAS-89 s27 corpus entries are driven with randomized clocked
//! suites and checked, cycle by cycle, against
//! [`iscas::s27_reference_step`] — the pure-integer model of the
//! circuit's state machine.  Just before every rising clock edge the
//! combinational cone has settled as a function of the current register
//! state and the data inputs applied in the previous low phase, so the
//! simulated `g17` must equal the reference output and the registers
//! must latch the reference next-state.  This holds for every delay
//! model (DDM, CDM and the MIX per-cell override), and the batch runner
//! must reproduce the single-shot run bit-identically at two workers.

use halotis::core::{LogicLevel, Time, TimeDelta};
use halotis::corpus::{mixed_model, StimulusSuite};
use halotis::netlist::{iscas, technology};
use halotis::sim::{BatchRunner, CompiledCircuit, Scenario, SimulationConfig};
use proptest::prelude::*;

/// The moment just before rising edge `cycle`: inputs from the previous
/// low phase and the pre-edge register state are both settled.
fn pre_edge(cycle: usize, period: TimeDelta) -> Time {
    Time::from_ns(1.0) + period * cycle as i64 - TimeDelta::from_ps(1.0)
}

fn model_configs() -> Vec<(&'static str, SimulationConfig)> {
    vec![
        ("ddm", SimulationConfig::default()),
        ("cdm", SimulationConfig::cdm()),
        ("mix", SimulationConfig::default().model(mixed_model())),
    ]
}

/// Runs one clocked suite on s27 and checks every cycle against the
/// reference model.
fn check_against_reference(cycles: usize, period: TimeDelta, suite: &StimulusSuite) {
    let netlist = iscas::s27();
    let library = technology::cmos06();
    let circuit = CompiledCircuit::compile(&netlist, &library).expect("s27 compiles");
    let stimuli = suite.stimuli(&netlist, &library);
    assert_eq!(stimuli.len(), 1, "clocked suites yield one stimulus");
    let (_, stimulus) = &stimuli[0];

    for (label, config) in model_configs() {
        let mut state = circuit.new_state();
        let result = circuit
            .run_with(&mut state, stimulus, &config)
            .expect("clocked run succeeds");
        let output = result.ideal_waveform("g17").expect("g17 traced");
        let data: Vec<_> = ["g0", "g1", "g2", "g3"]
            .iter()
            .map(|net| result.ideal_waveform(net).expect("input traced"))
            .collect();

        // Registers power up Low, matching the engine's initial state.
        let mut registers = [false; 3];
        for cycle in 0..cycles {
            let t = pre_edge(cycle, period);
            let inputs = [
                data[0].level_at(t) == LogicLevel::High,
                data[1].level_at(t) == LogicLevel::High,
                data[2].level_at(t) == LogicLevel::High,
                data[3].level_at(t) == LogicLevel::High,
            ];
            let (expected, next) = iscas::s27_reference_step(registers, inputs);
            assert_eq!(
                output.level_at(t) == LogicLevel::High,
                expected,
                "{label}: g17 diverges from the reference just before edge {cycle} \
                 (state {registers:?}, inputs {inputs:?})"
            );
            registers = next;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized clocked suites: every delay model tracks the integer
    /// state machine over every cycle.  The clock must leave more than
    /// s27's ~1.6 ns data-to-register settle time between the data
    /// change and the next rising edge, or the run is a genuine setup
    /// violation and the reference (which assumes settled data) no
    /// longer applies.
    #[test]
    fn s27_tracks_the_reference_state_machine(
        cycles in 2usize..40,
        seed in any::<u64>(),
    ) {
        let period = TimeDelta::from_ns(6.0);
        let suite = StimulusSuite::Clocked {
            cycles,
            period,
            high: TimeDelta::from_ns(2.0),
            skew: TimeDelta::from_ps(500.0),
            seed,
        };
        check_against_reference(cycles, period, &suite);
    }
}

/// The committed soak entries replay deterministically: single-shot and
/// two-worker batch runs agree on every waveform bit and every counter.
#[test]
fn soak_entries_are_bit_identical_across_thread_counts() {
    let library = technology::cmos06();
    for entry in halotis::corpus::standard_corpus() {
        if !entry.name.starts_with("s27") {
            continue;
        }
        let circuit = CompiledCircuit::compile(&entry.netlist, &library).expect("compiles");
        let stimuli = entry.suite.stimuli(&entry.netlist, &library);
        for (stimulus_label, stimulus) in &stimuli {
            for (label, config) in model_configs() {
                let mut state = circuit.new_state();
                let single = circuit
                    .run_with(&mut state, stimulus, &config)
                    .expect("single-shot run succeeds");

                let scenarios = [
                    Scenario::new("a", stimulus.clone(), config.clone()),
                    Scenario::new("b", stimulus.clone(), config.clone()),
                ];
                let report = BatchRunner::with_threads(2).run(&circuit, &scenarios);
                for outcome in report.outcomes() {
                    let batch = outcome.result.as_ref().expect("batch run succeeds");
                    let context = format!("{}/{stimulus_label}/{label}", entry.name);
                    assert_eq!(single.stats(), batch.stats(), "{context}: stats diverge");
                    assert_eq!(
                        single.waveforms(),
                        batch.waveforms(),
                        "{context}: waveforms diverge"
                    );
                }
            }
        }
    }
}

/// The soak run is a genuine soak: thousands of clock cycles drain
/// through the queue and the telemetry proves it.
#[test]
fn soak_entry_reports_queue_and_event_telemetry() {
    let library = technology::cmos06();
    let entry = halotis::corpus::standard_corpus()
        .into_iter()
        .find(|entry| entry.name == "s27_soak")
        .expect("s27_soak entry exists");
    let cycles = entry.suite.cycles().expect("soak suite is clocked");
    assert!(cycles >= 2000, "soak covers at least 2000 cycles");

    let circuit = CompiledCircuit::compile(&entry.netlist, &library).expect("compiles");
    let (_, stimulus) = &entry.suite.stimuli(&entry.netlist, &library)[0];
    let mut state = circuit.new_state();
    let result = circuit
        .run_with(&mut state, stimulus, &SimulationConfig::default())
        .expect("soak run succeeds");
    let stats = result.stats();
    assert!(stats.events_processed > cycles, "events scale with cycles");
    assert!(stats.queue_high_water > 0, "queue high-water recorded");
}
