//! Golden and property tests for the structural-Verilog interchange layer.
//!
//! Three committed `.v` files pin the writer's output byte-for-byte, the
//! way `circuits/*.net` pins the native writer: any formatting change —
//! identifier chunking, attribute spelling, port ordering — shows up as a
//! diff against `tests/golden/` instead of silently rewording every export.
//! On top of the byte pins, the whole 22-entry corpus and a proptest sweep
//! of `random_logic` circuits prove the round trip
//! `parse_verilog(to_verilog(n)) == n` is the identity, and a cross-format
//! fingerprint test shows a netlist that travelled `.net` → Verilog → parse
//! simulates bit-identically to one that never left the native format.

use halotis::core::TimeDelta;
use halotis::corpus::{mixed_model, standard_corpus, StimulusSuite};
use halotis::delay::DelayModelKind;
use halotis::netlist::{generators, iscas, parser, technology, verilog, Netlist};
use halotis::sim::{CompiledCircuit, SimulationConfig, SimulationStats};
use proptest::prelude::*;

const C17_GOLDEN: &str = include_str!("golden/c17.v");
const C432_GOLDEN: &str = include_str!("golden/c432.v");
const KS8_GOLDEN: &str = include_str!("golden/ks8.v");

fn golden_sources() -> [(&'static str, Netlist, &'static str); 3] {
    [
        ("c17", generators::c17(), C17_GOLDEN),
        ("c432", iscas::c432(), C432_GOLDEN),
        ("ks8", generators::kogge_stone_adder(8), KS8_GOLDEN),
    ]
}

#[test]
fn committed_verilog_goldens_are_current() {
    for (name, netlist, golden) in golden_sources() {
        assert_eq!(
            verilog::to_verilog(&netlist),
            golden,
            "tests/golden/{name}.v is stale; regenerate with \
             `cargo test --test verilog -- --ignored regenerate`"
        );
    }
}

#[test]
fn committed_verilog_goldens_parse_back_to_their_source() {
    for (name, netlist, golden) in golden_sources() {
        let parsed = verilog::parse_verilog(golden)
            .unwrap_or_else(|err| panic!("{name}: golden fails to parse: {err}"));
        assert_eq!(parsed, netlist, "{name}: golden text reconstructs source");
    }
}

/// `cargo test --test verilog -- --ignored regenerate`
#[test]
#[ignore = "writes tests/golden/*.v; run explicitly to regenerate"]
fn regenerate_committed_verilog() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
    for (name, netlist, _) in golden_sources() {
        std::fs::write(format!("{dir}/{name}.v"), verilog::to_verilog(&netlist))
            .unwrap_or_else(|err| panic!("cannot write {name}.v: {err}"));
    }
}

#[test]
fn verilog_round_trip_is_the_identity_on_every_corpus_entry() {
    let corpus = standard_corpus();
    assert!(corpus.len() >= 22, "corpus shrank to {}", corpus.len());
    for entry in &corpus {
        let emitted = verilog::to_verilog(&entry.netlist);
        let parsed = verilog::parse_verilog(&emitted)
            .unwrap_or_else(|err| panic!("{}: emitted Verilog fails to parse: {err}", entry.name));
        assert_eq!(parsed, entry.netlist, "{}: round trip identity", entry.name);
        assert_eq!(
            verilog::to_verilog(&parsed),
            emitted,
            "{}: emission is stable across the trip",
            entry.name
        );
    }
}

/// The same fingerprint recipe `tests/iscas_parser.rs` pins for netlists
/// that never leave the native format — identical constants, so the two
/// suites must stay in lockstep.
fn fingerprint_stats(netlist: &Netlist) -> [SimulationStats; 3] {
    let library = technology::cmos06();
    let suite = StimulusSuite::RandomVectors {
        vectors: 4,
        period: TimeDelta::from_ns(6.0),
        seed: 0xF1,
    };
    let stimuli = suite.stimuli(netlist, &library);
    let (_, stimulus) = &stimuli[0];
    let circuit = CompiledCircuit::compile(netlist, &library).expect("benchmark compiles");
    let mut state = circuit.new_state();
    [
        SimulationConfig::default().model(DelayModelKind::Degradation),
        SimulationConfig::default().model(DelayModelKind::Conventional),
        SimulationConfig::default().model(mixed_model()),
    ]
    .map(|config| {
        circuit
            .run_stats(&mut state, stimulus, &config)
            .expect("fingerprint run succeeds")
    })
}

fn stats(
    scheduled: usize,
    filtered: usize,
    processed: usize,
    transitions: usize,
    degraded: usize,
    collapsed: usize,
    peak: usize,
) -> SimulationStats {
    SimulationStats {
        events_scheduled: scheduled,
        events_filtered: filtered,
        events_processed: processed,
        output_transitions: transitions,
        degraded_transitions: degraded,
        collapsed_transitions: collapsed,
        queue_high_water: peak,
    }
}

/// A netlist that crossed formats (`.net` text → parse → Verilog → parse)
/// must be structure-identical to the directly parsed one and simulate to
/// the exact fingerprints `tests/iscas_parser.rs` pins — Verilog transit
/// cannot perturb net numbering, and therefore cannot perturb the engine.
#[test]
fn cross_format_transit_preserves_simulation_fingerprints() {
    for (name, net_text, ddm, cdm, mix) in [
        (
            "c432",
            iscas::C432_TEXT,
            stats(436, 12, 424, 345, 107, 9, 88),
            stats(634, 12, 622, 445, 0, 0, 88),
            None,
        ),
        (
            "c880",
            iscas::C880_TEXT,
            stats(1918, 157, 1761, 1248, 781, 74, 333),
            stats(2631, 74, 2557, 1728, 0, 0, 333),
            Some(stats(2185, 110, 2075, 1408, 464, 41, 333)),
        ),
    ] {
        let native = parser::parse(net_text).expect("committed netlist parses");
        let transited = verilog::parse_verilog(&verilog::to_verilog(&native))
            .unwrap_or_else(|err| panic!("{name}: Verilog transit fails: {err}"));
        assert_eq!(transited, native, "{name}: cross-format structure");

        let [got_ddm, got_cdm, got_mix] = fingerprint_stats(&transited);
        assert_eq!(got_ddm, ddm, "{name}/ddm after Verilog transit");
        assert_eq!(got_cdm, cdm, "{name}/cdm after Verilog transit");
        // c432's MIX column collapses onto DDM (no overridden cell class
        // present); c880 keeps all three columns distinct.
        assert_eq!(
            got_mix,
            mix.unwrap_or(ddm),
            "{name}/mix after Verilog transit"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Seeded random circuits — the generator family with the least
    /// structure and the widest name/arity variety — survive the Verilog
    /// round trip bit-identically.
    #[test]
    fn random_logic_survives_the_verilog_round_trip(
        inputs in 2usize..=12,
        gates in 1usize..=150,
        seed in any::<u64>(),
    ) {
        let netlist = generators::random_logic(inputs, gates, seed);
        let emitted = verilog::to_verilog(&netlist);
        let parsed = verilog::parse_verilog(&emitted).expect("emitted Verilog parses");
        prop_assert_eq!(&parsed, &netlist);
        prop_assert_eq!(verilog::to_verilog(&parsed), emitted);
    }
}
