//! Equivalence suite for the trait-based simulation API.
//!
//! The redesign's contract is *extensibility only, no behaviour change*:
//!
//! 1. running through a trait-object [`DelayModelHandle`] wrapping the
//!    built-in [`Degradation`] / [`Conventional`] structs — or a
//!    [`PerCellOverride`] composite that resolves to a built-in for every
//!    cell — must be **bit-identical** (waveforms and statistics) to the
//!    `DelayModelKind`-constructed configurations the enum-era API produced,
//! 2. the streaming observer path must reproduce what recorded results
//!    derive: [`ActivityCounter`] totals equal to per-net waveform lengths,
//!    [`PowerAccumulator`] equal to the recorded power estimate, and
//!    [`CompiledCircuit::run_stats`] equal to `result.stats()`,
//! 3. a *custom* model must behave identically through every execution path
//!    (single-shot, reused arena, parallel batch).
//!
//! Properties drive random circuits from the repository's generator families
//! (inverter chains, c17, random logic, small multipliers) with randomized
//! stimuli.

use halotis::core::{LogicLevel, Time, TimeDelta};
use halotis::delay::{
    Conventional, Degradation, DelayContext, DelayModel, DelayModelHandle, DelayModelKind,
    DelayOutcome, EdgeTiming, PerCellOverride,
};
use halotis::netlist::{generators, technology, CellKind, Library, Netlist};
use halotis::sim::{
    power, ActivityCounter, BatchRunner, CompiledCircuit, PowerAccumulator, Scenario,
    SimulationConfig, SimulationResult,
};
use halotis::waveform::Stimulus;
use proptest::prelude::*;

/// Asserts bit-identical statistics and raw waveforms on every net.
fn assert_identical(context: &str, reference: &SimulationResult, candidate: &SimulationResult) {
    assert_eq!(
        reference.stats(),
        candidate.stats(),
        "{context}: statistics diverge"
    );
    for (name, waveform) in reference.waveforms().iter() {
        assert_eq!(
            Some(waveform),
            candidate.waveform(name),
            "{context}: waveform of net {name} diverges"
        );
    }
    assert_eq!(
        reference.waveforms().len(),
        candidate.waveforms().len(),
        "{context}: net sets diverge"
    );
}

/// A toggle stimulus driving every primary input once, with per-input
/// offsets and polarities derived from `polarity`.
fn toggle_stimulus(netlist: &Netlist, library: &Library, polarity: u32) -> Stimulus {
    let mut stimulus = Stimulus::new(library.default_input_slew());
    for (index, &input) in netlist.primary_inputs().iter().enumerate() {
        let name = netlist.net(input).name().to_string();
        let high = polarity & (1 << (index % 32)) != 0;
        let initial = if high {
            LogicLevel::High
        } else {
            LogicLevel::Low
        };
        stimulus.set_initial(&name, initial);
        stimulus.drive(
            &name,
            Time::from_ns(1.0) + TimeDelta::from_ps(53.0 * index as f64),
            if high {
                LogicLevel::Low
            } else {
                LogicLevel::High
            },
        );
    }
    stimulus
}

/// Every way of naming a built-in model must run bit-identically: the kind,
/// the struct behind a handle, and a composite resolving to that kind for
/// every cell class.
fn check_model_spellings(context: &str, netlist: &Netlist, library: &Library, stimulus: &Stimulus) {
    let circuit = CompiledCircuit::compile(netlist, library).expect("circuit compiles");
    let mut state = circuit.new_state();
    for kind in DelayModelKind::both() {
        let reference = circuit
            .run_with(
                &mut state,
                stimulus,
                &SimulationConfig::default().model(kind),
            )
            .expect("kind-configured run succeeds");

        let via_struct = match kind {
            DelayModelKind::Degradation => DelayModelHandle::new(Degradation),
            DelayModelKind::Conventional => DelayModelHandle::new(Conventional),
        };
        // A composite that overrides *every* cell kind with the same model:
        // exercises the PerCellOverride dispatch on each evaluation.
        let mut composite = PerCellOverride::new(via_struct.clone());
        for cell in CellKind::ALL {
            composite = composite.with(cell.class(), via_struct.clone());
        }

        for (spelling, handle) in [
            ("struct handle", via_struct),
            ("composite", DelayModelHandle::new(composite)),
        ] {
            let candidate = circuit
                .run_with(
                    &mut state,
                    stimulus,
                    &SimulationConfig::default().model(handle),
                )
                .expect("trait-object run succeeds");
            assert_identical(
                &format!("{context} [{kind} via {spelling}]"),
                &reference,
                &candidate,
            );
        }
    }
}

/// The observer path must derive exactly what recorded results derive.
fn check_observers(context: &str, netlist: &Netlist, library: &Library, stimulus: &Stimulus) {
    let circuit = CompiledCircuit::compile(netlist, library).expect("circuit compiles");
    let mut state = circuit.new_state();
    for kind in DelayModelKind::both() {
        let config = SimulationConfig::default().model(kind);
        let result = circuit
            .run_with(&mut state, stimulus, &config)
            .expect("recording run succeeds");

        let stats = circuit
            .run_stats(&mut state, stimulus, &config)
            .expect("stats-only run succeeds");
        assert_eq!(&stats, result.stats(), "{context}: run_stats diverges");

        let mut observers = (ActivityCounter::new(), PowerAccumulator::new());
        circuit
            .run_observed(&mut state, stimulus, &config, &mut observers)
            .expect("observed run succeeds");
        let (activity, power_acc) = observers;
        assert_eq!(
            activity.stats(),
            result.stats(),
            "{context}: observer stats diverge"
        );
        assert_eq!(
            activity.total_transitions(),
            result.stats().output_transitions,
            "{context}: total transitions diverge"
        );
        for net in netlist.nets() {
            assert_eq!(
                activity.transitions(net.id()),
                result.waveform(net.name()).map(|w| w.len()).unwrap_or(0),
                "{context}: transition count of net {} diverges",
                net.name()
            );
        }
        assert_eq!(
            power_acc.report(netlist),
            power::estimate_compiled(&circuit, &result),
            "{context}: power report diverges"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn chain_pulses_run_identically_under_every_model_spelling(
        stages in 1usize..8,
        width_ps in 40.0f64..2500.0,
    ) {
        let netlist = generators::inverter_chain(stages);
        let library = technology::cmos06();
        let mut stimulus = Stimulus::new(library.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
        stimulus.drive("in", Time::from_ns(1.0) + TimeDelta::from_ps(width_ps), LogicLevel::Low);
        let context = format!("chain({stages}) pulse {width_ps:.0}ps");
        check_model_spellings(&context, &netlist, &library, &stimulus);
        check_observers(&context, &netlist, &library, &stimulus);
    }

    #[test]
    fn random_logic_runs_identically_under_every_model_spelling(
        inputs in 3usize..7,
        gates in 8usize..40,
        seed in 0u64..1000,
        polarity in 0u32..64,
    ) {
        let netlist = generators::random_logic(inputs, gates, seed);
        let library = technology::cmos06();
        let stimulus = toggle_stimulus(&netlist, &library, polarity);
        let context = format!("random({inputs},{gates},{seed})");
        check_model_spellings(&context, &netlist, &library, &stimulus);
        check_observers(&context, &netlist, &library, &stimulus);
    }

    #[test]
    fn multiplier_runs_identically_under_every_model_spelling(
        bits in 2usize..4,
        a in 0u64..16,
        b in 0u64..16,
    ) {
        let netlist = generators::multiplier(bits, bits);
        let ports = generators::MultiplierPorts::new(bits, bits);
        let library = technology::cmos06();
        let mask = (1u64 << bits) - 1;
        let mut stimulus = Stimulus::new(library.default_input_slew());
        for bit in ports.a_refs().iter().chain(ports.b_refs().iter()) {
            stimulus.set_initial(*bit, LogicLevel::Low);
        }
        stimulus.drive_bus_value(&ports.a_refs(), a & mask, Time::from_ns(1.0));
        stimulus.drive_bus_value(&ports.b_refs(), b & mask, Time::from_ns(1.0));
        let context = format!("multiplier({bits}x{bits}) {a:X}x{b:X}");
        check_model_spellings(&context, &netlist, &library, &stimulus);
        check_observers(&context, &netlist, &library, &stimulus);
    }

    #[test]
    fn c17_observers_match_recorded_derivations(polarity in 0u32..32) {
        let netlist = generators::c17();
        let library = technology::cmos06();
        let stimulus = toggle_stimulus(&netlist, &library, polarity);
        check_observers("c17", &netlist, &library, &stimulus);
    }
}

/// A custom model (not a built-in, not a composite of built-ins): inflates
/// the output slew by a fixed factor.  Used to pin that *custom* models run
/// identically through the single-shot, reused-arena and batch paths.
#[derive(Debug)]
struct WideRamps;

impl DelayModel for WideRamps {
    fn label(&self) -> &str {
        "DDM-wide-ramps"
    }

    fn evaluate(&self, arc: &EdgeTiming, ctx: &DelayContext) -> DelayOutcome {
        let mut out = Degradation.evaluate(arc, ctx);
        out.output_slew = out.output_slew.scale(1.25);
        out
    }
}

#[test]
fn custom_model_is_path_independent_and_distinct() {
    let netlist = generators::multiplier(3, 3);
    let ports = generators::MultiplierPorts::new(3, 3);
    let library = technology::cmos06();
    let circuit = CompiledCircuit::compile(&netlist, &library).unwrap();
    let mut stimulus = Stimulus::new(library.default_input_slew());
    for bit in ports.a_refs().iter().chain(ports.b_refs().iter()) {
        stimulus.set_initial(*bit, LogicLevel::Low);
    }
    stimulus.drive_bus_value(&ports.a_refs(), 0x5, Time::from_ns(1.0));
    stimulus.drive_bus_value(&ports.b_refs(), 0x7, Time::from_ns(1.0));

    let custom = SimulationConfig::default().model(DelayModelHandle::new(WideRamps));
    let single = circuit.run(&stimulus, &custom).unwrap();
    assert_eq!(single.model_kind(), None);
    assert_eq!(single.model_label(), "DDM-wide-ramps");

    // Reused (dirtied) arena.
    let mut state = circuit.new_state();
    circuit
        .run_with(&mut state, &stimulus, &SimulationConfig::cdm())
        .unwrap();
    let reused = circuit.run_with(&mut state, &stimulus, &custom).unwrap();
    assert_identical("custom model reused arena", &single, &reused);

    // Parallel batch: the same custom handle shared across workers.
    let scenarios: Vec<Scenario> = (0..6)
        .map(|i| Scenario::new(format!("s{i}"), stimulus.clone(), custom.clone()))
        .collect();
    let report = BatchRunner::with_threads(3).run(&circuit, &scenarios);
    assert_eq!(report.failed(), 0);
    for outcome in report.outcomes() {
        assert_identical(
            &format!("custom model batch {}", outcome.label),
            &single,
            outcome.result.as_ref().unwrap(),
        );
    }

    // And it really is a *different* model than plain DDM: the widened
    // ramps must show up in at least one net's waveform.
    let ddm = circuit.run(&stimulus, &SimulationConfig::ddm()).unwrap();
    let diverges = ddm
        .waveforms()
        .iter()
        .any(|(name, waveform)| single.waveform(name) != Some(waveform));
    assert!(diverges, "custom model produced DDM-identical waveforms");
}

/// The fixed Table 1 workload (the paper's published numbers) through the
/// observer path: statistics must match the recorded path exactly, with no
/// waveform retention anywhere.
#[test]
fn table1_workload_observer_stats_match_recorded_stats() {
    use halotis::experiments::{multiplier_fixture, multiplier_stimulus, SEQUENCE_FIG6};
    let fixture = multiplier_fixture();
    let stimulus = multiplier_stimulus(&fixture.ports, SEQUENCE_FIG6);
    let circuit = CompiledCircuit::compile(&fixture.netlist, &fixture.library).unwrap();

    let scenarios: Vec<Scenario> =
        Scenario::both_models("table1", stimulus, SimulationConfig::default()).into();
    let recorded = BatchRunner::new().run(&circuit, &scenarios);
    let observed = BatchRunner::new().run_observed(&circuit, &scenarios, |_, _| ());

    assert_eq!(recorded.totals(), observed.totals());
    for (a, b) in recorded.outcomes().iter().zip(observed.outcomes()) {
        assert_eq!(a.label, b.label);
        assert_eq!(
            a.result.as_ref().unwrap().stats(),
            b.stats.as_ref().unwrap()
        );
    }
}
