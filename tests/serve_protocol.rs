//! Wire-protocol hardening tests for the `halotis-serve` daemon.
//!
//! Every abusive input — truncated frames, oversized length prefixes,
//! garbage JSON, slow-loris trickling, pipelined overload — must produce a
//! structured error (where a reply is still possible) and leave the daemon
//! serving; worker-pool slots and per-connection quotas must never leak.
//! The daemon under test listens on loopback TCP (port 0) or a Unix-domain
//! socket, with timeouts tightened so the suite stays fast.

use std::time::Duration;

use halotis::core::TimeDelta;
use halotis::corpus::StimulusSuite;
use halotis::netlist::{generators, writer};
use halotis::serve::client::{
    load_request, revert_request, shutdown_request, simulate_request, stats_request, Client,
    Response,
};
use halotis::serve::json::Value;
use halotis::serve::{start, ServerConfig, ServerHandle};

fn test_config() -> ServerConfig {
    ServerConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        read_timeout: Duration::from_millis(400),
        ..ServerConfig::default()
    }
}

fn start_daemon(config: ServerConfig) -> (ServerHandle, String) {
    let handle = start(config).expect("daemon starts");
    let addr = handle.tcp_addr().expect("tcp bound").to_string();
    (handle, addr)
}

fn connect(addr: &str) -> Client {
    let mut client = Client::connect_tcp(addr).expect("client connects");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    client
}

fn stop(handle: ServerHandle) {
    handle.initiate_shutdown();
    handle.wait();
}

fn c17_text() -> String {
    writer::to_text(&generators::c17())
}

fn exhaustive() -> StimulusSuite {
    StimulusSuite::Exhaustive {
        period: TimeDelta::from_ns(4.0),
    }
}

/// Extracts the deterministic per-scenario payload of a simulate response
/// (everything except `wall_time_ns`).
fn scenario_payload(response: &Response) -> Vec<(String, Vec<u64>, u64)> {
    response
        .ok()
        .expect("simulate succeeded")
        .get("scenarios")
        .and_then(Value::as_array)
        .expect("scenarios present")
        .iter()
        .map(|row| {
            let counters = [
                "events_scheduled",
                "events_filtered",
                "events_processed",
                "output_transitions",
                "degraded_transitions",
                "collapsed_transitions",
                "queue_high_water",
                "transitions",
                "glitch_pulses",
            ]
            .iter()
            .map(|field| row.get(field).and_then(Value::as_u64).unwrap())
            .collect();
            (
                row.get("stimulus")
                    .and_then(Value::as_str)
                    .unwrap()
                    .to_string(),
                counters,
                row.get("energy_joules")
                    .and_then(Value::as_f64)
                    .unwrap()
                    .to_bits(),
            )
        })
        .collect()
}

#[test]
fn malformed_requests_get_structured_errors_and_the_connection_survives() {
    let (handle, addr) = start_daemon(test_config());
    let mut client = connect(&addr);

    let response = client.call("{definitely not json").unwrap();
    assert_eq!(response.error_code(), Some("bad_json"));
    assert_eq!(response.id, None);

    client.send("\u{fffd}").unwrap(); // valid UTF-8; exercise bad JSON path
    assert_eq!(
        client.recv().unwrap().unwrap().error_code(),
        Some("bad_json")
    );

    let response = client.call(r#"{"op":"warp","id":4}"#).unwrap();
    assert_eq!(response.error_code(), Some("unknown_op"));
    assert_eq!(response.id, Some(4));

    let response = client.call(r#"{"op":"simulate","id":5}"#).unwrap();
    assert_eq!(response.error_code(), Some("bad_request"));

    let response = client.call(r#"[1,2,3]"#).unwrap();
    assert_eq!(response.error_code(), Some("bad_request"));

    // Non-UTF-8 body, correctly framed.
    client.send_bytes(&[0, 0, 0, 2, 0xff, 0xfe]).unwrap();
    let response = client.recv().unwrap().unwrap();
    assert_eq!(response.error_code(), Some("malformed_frame"));

    // The same connection still serves real requests.
    let response = client.call(&stats_request(9)).unwrap();
    assert!(response.ok().is_some());
    drop(client);
    stop(handle);
}

#[test]
fn oversized_length_prefix_is_refused_with_a_structured_error() {
    let (handle, addr) = start_daemon(ServerConfig {
        max_frame: 1024,
        ..test_config()
    });
    let mut client = connect(&addr);
    client.send_bytes(&(1u32 << 30).to_be_bytes()).unwrap();
    let response = client.recv().unwrap().unwrap();
    assert_eq!(response.error_code(), Some("frame_too_large"));
    // The daemon hangs up after the error (the body was never consumed)…
    assert!(matches!(client.recv(), Ok(None) | Err(_)));
    // …but keeps serving fresh connections.
    let mut next = connect(&addr);
    assert!(next.call(&stats_request(1)).unwrap().ok().is_some());
    drop(next);
    stop(handle);
}

#[test]
fn truncated_frames_and_abrupt_disconnects_leave_the_daemon_serving() {
    let (handle, addr) = start_daemon(test_config());
    // Half a length prefix, then hang up.
    let mut client = connect(&addr);
    client.send_bytes(&[0, 0]).unwrap();
    drop(client);
    // A full prefix promising a body that never comes, then hang up.
    let mut client = connect(&addr);
    client.send_bytes(&[0, 0, 0, 64, b'{']).unwrap();
    drop(client);

    let mut next = connect(&addr);
    assert!(next.call(&stats_request(1)).unwrap().ok().is_some());
    drop(next);
    stop(handle);
}

#[test]
fn slow_loris_trickle_hits_the_read_timeout() {
    let (handle, addr) = start_daemon(ServerConfig {
        read_timeout: Duration::from_millis(150),
        ..test_config()
    });
    let mut client = connect(&addr);
    // A frame promised but trickled too slowly: the prefix arrives, the
    // body never does.
    client.send_bytes(&[0, 0, 0, 8, b'{']).unwrap();
    let response = client.recv().unwrap().unwrap();
    assert_eq!(response.error_code(), Some("timeout"));
    assert!(matches!(client.recv(), Ok(None) | Err(_)));
    drop(client);
    stop(handle);
}

#[test]
fn pipelined_overload_answers_quota_or_busy_and_slots_do_not_leak() {
    let (handle, addr) = start_daemon(ServerConfig {
        workers: 1,
        queue_depth: 4,
        max_inflight: 2,
        ..test_config()
    });
    let mut client = connect(&addr);
    let load = client.call(&load_request(1, &c17_text())).unwrap();
    let key = load
        .ok()
        .and_then(|ok| ok.get("key"))
        .and_then(Value::as_str)
        .unwrap()
        .to_string();

    // A workload slow enough that pipelined requests pile up behind it.
    let heavy = StimulusSuite::RandomVectors {
        vectors: 200,
        period: TimeDelta::from_ns(5.0),
        seed: 0xFEED,
    };
    let total = 8u64;
    for id in 10..10 + total {
        client
            .send(&simulate_request(id, &key, &heavy, "ddm"))
            .unwrap();
    }
    let mut ok = 0;
    let mut rejected = 0;
    for _ in 0..total {
        let response = client.recv().unwrap().expect("daemon answers all");
        match response.error_code() {
            None => ok += 1,
            Some("quota") | Some("busy") => rejected += 1,
            Some(other) => panic!("unexpected error {other}"),
        }
    }
    assert!(ok >= 1, "the pool must make progress");
    assert!(
        rejected >= 1,
        "an 8-deep pipeline must overflow a quota of 2"
    );

    // No leaked slots: sequential requests all succeed afterwards.
    for id in 100..104 {
        let response = client
            .call(&simulate_request(id, &key, &exhaustive(), "ddm"))
            .unwrap();
        assert!(
            response.ok().is_some(),
            "post-overload request failed: {:?}",
            response.error_code()
        );
    }
    drop(client);
    stop(handle);
}

#[test]
fn lru_eviction_invalidates_keys_and_simulate_reports_unknown_key() {
    let (handle, addr) = start_daemon(ServerConfig {
        cache_capacity: 1,
        ..test_config()
    });
    let mut client = connect(&addr);
    let first = client.call(&load_request(1, &c17_text())).unwrap();
    let first_key = first
        .ok()
        .and_then(|ok| ok.get("key"))
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    let second = client
        .call(&load_request(
            2,
            &writer::to_text(&generators::parity_tree(4)),
        ))
        .unwrap();
    let second_key = second
        .ok()
        .and_then(|ok| ok.get("key"))
        .and_then(Value::as_str)
        .unwrap()
        .to_string();

    let response = client
        .call(&simulate_request(3, &first_key, &exhaustive(), "ddm"))
        .unwrap();
    assert_eq!(response.error_code(), Some("unknown_key"));
    let response = client
        .call(&simulate_request(4, &second_key, &exhaustive(), "cdm"))
        .unwrap();
    assert!(response.ok().is_some());
    drop(client);
    stop(handle);
}

#[test]
fn edit_and_revert_round_trip_over_the_wire() {
    let (handle, addr) = start_daemon(test_config());
    let mut client = connect(&addr);
    let load = client.call(&load_request(1, &c17_text())).unwrap();
    let key = load
        .ok()
        .and_then(|ok| ok.get("key"))
        .and_then(Value::as_str)
        .unwrap()
        .to_string();

    let baseline = client
        .call(&simulate_request(2, &key, &exhaustive(), "ddm"))
        .unwrap();
    let baseline_payload = scenario_payload(&baseline);

    // Unknown names are structured errors, and they are atomic.
    let response = client
        .call(&format!(
            r#"{{"op":"edit","id":3,"key":"{key}","commands":[{{"action":"swap_kind","gate":"ghost","kind":"nor2"}}]}}"#
        ))
        .unwrap();
    assert_eq!(response.error_code(), Some("unknown_gate"));
    let response = client
        .call(&format!(
            r#"{{"op":"edit","id":4,"key":"{key}","commands":[{{"action":"expose","net":"ghost"}}]}}"#
        ))
        .unwrap();
    assert_eq!(response.error_code(), Some("unknown_net"));

    // A real edit changes the numbers…
    let gate = generators::c17().gates()[0].name().to_string();
    let response = client
        .call(&format!(
            r#"{{"op":"edit","id":5,"key":"{key}","commands":[{{"action":"swap_kind","gate":"{gate}","kind":"nor2"}}]}}"#
        ))
        .unwrap();
    let ok = response.ok().expect("edit succeeded").clone();
    assert_eq!(ok.get("revert_depth").and_then(Value::as_u64), Some(1));
    assert_eq!(ok.get("invertible").and_then(Value::as_bool), Some(true));

    let edited = client
        .call(&simulate_request(6, &key, &exhaustive(), "ddm"))
        .unwrap();
    assert_ne!(scenario_payload(&edited), baseline_payload);

    // …and revert restores them bit-exactly.
    let response = client.call(&revert_request(7, &key)).unwrap();
    let ok = response.ok().expect("revert succeeded").clone();
    assert_eq!(ok.get("via").and_then(Value::as_str), Some("inverse"));
    assert_eq!(ok.get("revert_depth").and_then(Value::as_u64), Some(0));

    let restored = client
        .call(&simulate_request(8, &key, &exhaustive(), "ddm"))
        .unwrap();
    assert_eq!(scenario_payload(&restored), baseline_payload);

    let response = client.call(&revert_request(9, &key)).unwrap();
    assert_eq!(response.error_code(), Some("nothing_to_revert"));
    drop(client);
    stop(handle);
}

#[test]
fn shutdown_drains_and_refuses_new_work() {
    let (handle, addr) = start_daemon(test_config());
    let mut client = connect(&addr);
    let response = client.call(&shutdown_request(1)).unwrap();
    assert_eq!(
        response
            .ok()
            .and_then(|ok| ok.get("draining"))
            .and_then(Value::as_bool),
        Some(true)
    );
    // The daemon closes this connection after acknowledging.
    assert!(matches!(client.recv(), Ok(None) | Err(_)));
    drop(client);
    handle.wait();
}

#[test]
fn unix_domain_socket_serves_the_same_protocol() {
    let path = std::env::temp_dir().join(format!("halotis-serve-test-{}.sock", std::process::id()));
    let handle = start(ServerConfig {
        uds: Some(path.clone()),
        read_timeout: Duration::from_millis(400),
        ..ServerConfig::default()
    })
    .expect("daemon starts on uds");
    let mut client = Client::connect_uds(&path).expect("uds client connects");
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    let load = client.call(&load_request(1, &c17_text())).unwrap();
    let key = load
        .ok()
        .and_then(|ok| ok.get("key"))
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    let response = client
        .call(&simulate_request(2, &key, &exhaustive(), "mix"))
        .unwrap();
    assert!(response.ok().is_some());
    drop(client);
    handle.initiate_shutdown();
    handle.wait();
    assert!(!path.exists(), "socket file removed on clean shutdown");
}

#[test]
fn preload_warms_the_cache_through_the_load_path() {
    let (handle, addr) = start_daemon(ServerConfig {
        preload: true,
        ..test_config()
    });
    let mut client = connect(&addr);

    // Every standard-corpus circuit was compiled before the first client
    // connected (the capacity floor keeps the replay from self-evicting).
    // Entries sharing a circuit (probe/soak variants) dedupe by fingerprint.
    let corpus = halotis::corpus::standard_corpus();
    let unique: std::collections::BTreeSet<String> = corpus
        .iter()
        .map(|entry| writer::to_text(&entry.netlist))
        .collect();
    let stats = client.call(&stats_request(1)).unwrap();
    let cache = stats
        .ok()
        .and_then(|ok| ok.get("cache"))
        .cloned()
        .expect("cache block present");
    assert_eq!(
        cache.get("entries").and_then(Value::as_u64),
        Some(unique.len() as u64)
    );
    assert_eq!(
        cache.get("compiles").and_then(Value::as_u64),
        Some(unique.len() as u64)
    );

    // A client loading a corpus circuit hits the warmed entry: the preload
    // renders through the same writer the fingerprint hashes.
    let load = client.call(&load_request(2, &c17_text())).unwrap();
    let ok = load.ok().expect("load succeeds");
    assert_eq!(ok.get("cached").and_then(Value::as_bool), Some(true));
    drop(client);
    stop(handle);
}

#[test]
fn clocked_suites_simulate_sequential_circuits_over_the_wire() {
    let (handle, addr) = start_daemon(test_config());
    let mut client = connect(&addr);
    let load = client
        .call(&load_request(
            1,
            &writer::to_text(&halotis::netlist::iscas::s27()),
        ))
        .unwrap();
    let key = load
        .ok()
        .and_then(|ok| ok.get("key"))
        .and_then(Value::as_str)
        .unwrap()
        .to_string();

    let clocked = StimulusSuite::Clocked {
        cycles: 16,
        period: TimeDelta::from_ns(4.0),
        high: TimeDelta::from_ns(2.0),
        skew: TimeDelta::from_ps(500.0),
        seed: 0x27,
    };
    let response = client
        .call(&simulate_request(2, &key, &clocked, "ddm"))
        .unwrap();
    let payload = scenario_payload(&response);
    assert_eq!(payload.len(), 1, "one clocked scenario");
    let (label, counters, _) = &payload[0];
    assert_eq!(label, "clk16");
    // events_processed > 0 and the queue high-water mark is reported.
    assert!(counters[2] > 0, "clocked run processes events");
    assert!(counters[6] > 0, "queue high-water reported");

    // A degenerate clock shape is refused before it reaches a worker.
    let degenerate = StimulusSuite::Clocked {
        cycles: 4,
        period: TimeDelta::from_ns(2.0),
        high: TimeDelta::from_ns(1.5),
        skew: TimeDelta::from_ns(0.5),
        seed: 1,
    };
    let response = client
        .call(&simulate_request(3, &key, &degenerate, "ddm"))
        .unwrap();
    assert_eq!(response.error_code(), Some("bad_request"));
    drop(client);
    stop(handle);
}

#[test]
fn cyclic_netlists_are_refused_with_a_structured_error() {
    let (handle, addr) = start_daemon(test_config());
    let mut client = connect(&addr);

    // A two-inverter ring: every net is driven, but the gate graph is
    // cyclic.  The daemon must answer netlist_error — not panic.
    let ring = "circuit ring\ninput en\nwire a b\noutput b\n\
                gate nand2 u1 en b -> a\ngate inv u2 a -> b\n";
    let response = client.call(&load_request(1, ring)).unwrap();
    assert_eq!(response.error_code(), Some("netlist_error"));
    let message = response.error_message().unwrap_or_default();
    assert!(
        message.contains("combinational loop"),
        "error names the loop: {message}"
    );

    // The connection survives and serves acyclic work afterwards.
    let load = client.call(&load_request(2, &c17_text())).unwrap();
    assert!(load.ok().is_some());
    drop(client);
    stop(handle);
}
