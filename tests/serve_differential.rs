//! Differential acceptance tests for `halotis-serve`: the daemon's numbers
//! ARE the engine's numbers.
//!
//! Two proofs, from opposite directions:
//!
//! 1. **In-process differential** — for representative corpus entries and
//!    all three model columns, every scenario row the daemon returns is
//!    compared field-by-field (energy **bitwise**) against a fresh
//!    in-process [`CompiledCircuit::run_observed`] run with the identical
//!    observer stack.  This crosses the whole wire: framing, JSON float
//!    round-tripping, worker arenas re-shaped by `adapt_state`.
//! 2. **Golden replay** — a 1-worker daemon (one arena hopping across every
//!    circuit) replays a corpus slice against the committed
//!    `CORPUS_stats.json`, via the same [`check_entries_against_golden`]
//!    code path CI's release-mode serve job uses for the full corpus.

use std::time::Duration;

use halotis::corpus::{mixed_model, standard_corpus, GlitchProfile};
use halotis::delay::DelayModelKind;
use halotis::netlist::{technology, writer};
use halotis::serve::client::{load_request, simulate_request, Client};
use halotis::serve::json::Value;
use halotis::serve::loadgen::check_entries_against_golden;
use halotis::serve::{start, ServerConfig, Target};
use halotis::sim::{ActivityCounter, CompiledCircuit, PowerAccumulator, SimulationConfig};

/// Small-but-diverse slice: the paper's benchmark, a carry-save multiplier,
/// a prefix adder, a toggle-probe suite and a random-vector suite.
const SLICE: [&str; 5] = ["c17", "mult4x4", "ks8", "c17_probe", "parity6"];

const MODELS: [&str; 3] = ["ddm", "cdm", "mix"];

fn model_config(model: &str) -> SimulationConfig {
    match model {
        "ddm" => SimulationConfig::default().model(DelayModelKind::Degradation),
        "cdm" => SimulationConfig::default().model(DelayModelKind::Conventional),
        _ => SimulationConfig::default().model(mixed_model()),
    }
}

fn field(row: &Value, name: &str) -> u64 {
    row.get(name)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("scenario row missing {name}"))
}

/// The daemon compiles what it parses off the wire, so the text round trip
/// must be the identity — same net numbering, same event schedule — for
/// every corpus entry, or bit-identity over the wire is unprovable.
#[test]
fn text_round_trip_is_the_identity_for_every_corpus_entry() {
    for entry in standard_corpus() {
        let text = writer::to_text(&entry.netlist);
        let reparsed = halotis::netlist::parser::parse(&text)
            .unwrap_or_else(|err| panic!("{}: reparse failed: {err}", entry.name));
        assert_eq!(
            reparsed, entry.netlist,
            "{}: round trip altered the netlist",
            entry.name
        );
    }
}

#[test]
fn daemon_matches_in_process_run_observed_bit_for_bit() {
    let handle = start(ServerConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    })
    .expect("daemon starts");
    let addr = handle.tcp_addr().unwrap().to_string();
    let mut client = Client::connect_tcp(&addr).expect("client connects");
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();

    let library = technology::cmos06();
    let mut next_id = 1u64;
    let mut compared = 0usize;
    for entry in standard_corpus()
        .into_iter()
        .filter(|entry| SLICE.contains(&entry.name.as_str()))
    {
        let response = client
            .call(&load_request(next_id, &writer::to_text(&entry.netlist)))
            .unwrap();
        next_id += 1;
        let key = response
            .ok()
            .and_then(|ok| ok.get("key"))
            .and_then(Value::as_str)
            .expect("load succeeded")
            .to_string();

        let circuit = CompiledCircuit::compile(&entry.netlist, &library).unwrap();
        let mut state = circuit.new_state();
        for model in MODELS {
            let response = client
                .call(&simulate_request(next_id, &key, &entry.suite, model))
                .unwrap();
            next_id += 1;
            let rows = response
                .ok()
                .and_then(|ok| ok.get("scenarios"))
                .and_then(Value::as_array)
                .unwrap_or_else(|| {
                    panic!(
                        "simulate {model} failed for {}: {:?}",
                        entry.name,
                        response.error_message()
                    )
                })
                .to_vec();

            let config = model_config(model);
            let stimuli = entry.suite.stimuli(&entry.netlist, &library);
            assert_eq!(rows.len(), stimuli.len(), "{}: scenario count", entry.name);
            for (row, (stimulus_label, stimulus)) in rows.iter().zip(&stimuli) {
                let mut observer = (
                    (ActivityCounter::new(), PowerAccumulator::new()),
                    GlitchProfile::new(),
                );
                let stats = circuit
                    .run_observed(&mut state, stimulus, &config, &mut observer)
                    .unwrap();
                let ((activity, power), glitches) = &observer;

                let label = format!("{}/{stimulus_label}/{model}", entry.name);
                assert_eq!(
                    row.get("stimulus").and_then(Value::as_str),
                    Some(stimulus_label.as_str()),
                    "{label}: stimulus label"
                );
                for (name, want) in [
                    ("events_scheduled", stats.events_scheduled),
                    ("events_filtered", stats.events_filtered),
                    ("events_processed", stats.events_processed),
                    ("output_transitions", stats.output_transitions),
                    ("degraded_transitions", stats.degraded_transitions),
                    ("collapsed_transitions", stats.collapsed_transitions),
                    ("queue_high_water", stats.queue_high_water),
                ] {
                    assert_eq!(field(row, name), want as u64, "{label}: {name}");
                }
                assert_eq!(
                    field(row, "transitions"),
                    activity.total_transitions() as u64,
                    "{label}: transitions"
                );
                assert_eq!(
                    field(row, "glitch_pulses"),
                    glitches.total_glitches() as u64,
                    "{label}: glitch_pulses"
                );
                let energy = row
                    .get("energy_joules")
                    .and_then(Value::as_f64)
                    .expect("energy present");
                assert_eq!(
                    energy.to_bits(),
                    power.total_joules().to_bits(),
                    "{label}: energy_joules not bitwise identical \
                     (daemon {energy:e}, in-process {:e})",
                    power.total_joules()
                );
                compared += 1;
            }
        }
    }
    assert!(compared >= SLICE.len() * MODELS.len());

    drop(client);
    handle.initiate_shutdown();
    handle.wait();
}

#[test]
fn one_worker_daemon_replays_the_committed_golden_stats() {
    let golden = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/CORPUS_stats.json"))
        .expect("committed golden stats exist");

    let handle = start(ServerConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("daemon starts");
    let target = Target::Tcp(handle.tcp_addr().unwrap().to_string());

    let checked = check_entries_against_golden(&target, &golden, Some(&SLICE))
        .expect("daemon replay matches the committed golden stats");
    assert!(
        checked >= SLICE.len() * MODELS.len(),
        "only {checked} scenarios checked"
    );

    handle.initiate_shutdown();
    handle.wait();
}
