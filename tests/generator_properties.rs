//! Property suites for the netlist generator families.
//!
//! Two layers of protection for the corpus substrate:
//!
//! * **functional** — the arithmetic generators (ripple-carry, carry-skip
//!   and Kogge-Stone adders; array and Wallace-tree multipliers; parity
//!   trees) are checked against plain integer arithmetic on random
//!   operands, so a generator refactor cannot silently change a circuit's
//!   function, and
//! * **structural** — every generator family (including the ISCAS
//!   reconstructions) must produce levelizable circuits with no floating
//!   nets and bounded fanout, the invariants the compiled simulation core
//!   assumes.

use halotis::core::NetId;
use halotis::netlist::{eval, generators, iscas, levelize, Netlist};
use proptest::prelude::*;

fn bus(netlist: &Netlist, prefix: &str, width: usize) -> Vec<NetId> {
    (0..width)
        .map(|i| {
            netlist
                .net_id(&format!("{prefix}{i}"))
                .unwrap_or_else(|| panic!("{} has no net {prefix}{i}", netlist.name()))
        })
        .collect()
}

/// Evaluates an `a + b + cin` adder netlist with the standard port names.
fn adder_value(adder: &Netlist, bits: usize, av: u64, bv: u64, cv: u64) -> u64 {
    let a = bus(adder, "a", bits);
    let b = bus(adder, "b", bits);
    let cin = adder.net_id("cin").unwrap();
    let mut outputs = bus(adder, "s", bits);
    outputs.push(adder.net_id("cout").unwrap());
    let mut assignment = eval::bus_assignment(&a, av);
    assignment.extend(eval::bus_assignment(&b, bv));
    assignment.extend(eval::bus_assignment(&[cin], cv));
    eval::evaluate_bus(adder, &assignment, &outputs).expect("adder outputs are defined")
}

/// Evaluates an `a × b` multiplier netlist (`out_prefix` = `s` for the
/// array form, `p` for the Wallace form).
fn multiplier_value(
    netlist: &Netlist,
    a_bits: usize,
    b_bits: usize,
    out_prefix: &str,
    av: u64,
    bv: u64,
) -> u64 {
    let a = bus(netlist, "a", a_bits);
    let b = bus(netlist, "b", b_bits);
    let outputs = bus(netlist, out_prefix, netlist.primary_outputs().len());
    let mut assignment = eval::bus_assignment(&a, av);
    assignment.extend(eval::bus_assignment(&b, bv));
    eval::evaluate_bus(netlist, &assignment, &outputs).expect("product bits are defined")
}

// ---------------------------------------------------------------------------
// Functional properties: generated arithmetic equals integer arithmetic.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kogge_stone_equals_integer_addition(
        bits in 1usize..=16,
        av in any::<u64>(),
        bv in any::<u64>(),
        cv in 0u64..2,
    ) {
        let mask = u64::MAX >> (64 - bits);
        let (av, bv) = (av & mask, bv & mask);
        let adder = generators::kogge_stone_adder(bits);
        prop_assert_eq!(adder_value(&adder, bits, av, bv, cv), av + bv + cv);
    }

    #[test]
    fn adder_families_agree_with_each_other(
        bits in 2usize..=10,
        block in 1usize..=4,
        av in any::<u64>(),
        bv in any::<u64>(),
        cv in 0u64..2,
    ) {
        let mask = u64::MAX >> (64 - bits);
        let (av, bv) = (av & mask, bv & mask);
        let expected = av + bv + cv;
        let ripple = generators::ripple_carry_adder(bits);
        let skip = generators::carry_skip_adder(bits, block);
        let ks = generators::kogge_stone_adder(bits);
        prop_assert_eq!(adder_value(&ripple, bits, av, bv, cv), expected);
        prop_assert_eq!(adder_value(&skip, bits, av, bv, cv), expected);
        prop_assert_eq!(adder_value(&ks, bits, av, bv, cv), expected);
    }

    #[test]
    fn wallace_tree_equals_integer_multiplication(
        a_bits in 1usize..=6,
        b_bits in 1usize..=6,
        av in any::<u64>(),
        bv in any::<u64>(),
    ) {
        let av = av & (u64::MAX >> (64 - a_bits));
        let bv = bv & (u64::MAX >> (64 - b_bits));
        let wallace = generators::wallace_tree_multiplier(a_bits, b_bits);
        prop_assert_eq!(multiplier_value(&wallace, a_bits, b_bits, "p", av, bv), av * bv);
    }

    #[test]
    fn wallace_tree_agrees_with_the_array_multiplier(
        a_bits in 2usize..=5,
        b_bits in 2usize..=5,
        av in any::<u64>(),
        bv in any::<u64>(),
    ) {
        let av = av & (u64::MAX >> (64 - a_bits));
        let bv = bv & (u64::MAX >> (64 - b_bits));
        let wallace = generators::wallace_tree_multiplier(a_bits, b_bits);
        let array = generators::multiplier(a_bits, b_bits);
        prop_assert_eq!(
            multiplier_value(&wallace, a_bits, b_bits, "p", av, bv),
            multiplier_value(&array, a_bits, b_bits, "s", av, bv)
        );
    }

    #[test]
    fn parity_tree_equals_popcount_parity(
        width in 1usize..=20,
        pattern in any::<u64>(),
    ) {
        let pattern = pattern & (u64::MAX >> (64 - width));
        let tree = generators::parity_tree(width);
        let inputs = bus(&tree, "in", width);
        let out = tree.net_id("parity").unwrap();
        let assignment = eval::bus_assignment(&inputs, pattern);
        let value = eval::evaluate_bus(&tree, &assignment, &[out]).unwrap();
        prop_assert_eq!(value, u64::from(pattern.count_ones() % 2 == 1));
    }
}

// ---------------------------------------------------------------------------
// Structural invariants, shared by every generator family.
// ---------------------------------------------------------------------------

/// Asserts the invariants the simulation core relies on: the circuit
/// levelizes (acyclic, every gate reachable), no net floats (every net
/// drives a gate or is a primary output; every non-input net is driven),
/// and no net's fanout exceeds `max_fanout`.
fn assert_structure(netlist: &Netlist, max_fanout: usize) {
    assert_structure_with(netlist, max_fanout, false);
}

/// [`assert_structure`], optionally tolerating unused primary inputs (the
/// seeded random generator may leave an input unpicked; every other family
/// must consume all of its inputs).
fn assert_structure_with(netlist: &Netlist, max_fanout: usize, allow_unused_inputs: bool) {
    let levels = levelize::levelize(netlist).expect("generated circuits are acyclic");
    assert!(levels.depth() >= 1, "{}: no logic", netlist.name());
    assert_eq!(
        levels.topological_order().count(),
        netlist.gate_count(),
        "{}: levelization must cover every gate",
        netlist.name()
    );
    for net in netlist.nets() {
        let name = || format!("{}:{}", netlist.name(), net.name());
        if !net.is_primary_input() {
            assert!(
                matches!(net.driver(), halotis::netlist::NetDriver::Gate(_)),
                "{} is undriven",
                name()
            );
        }
        assert!(
            !net.loads().is_empty()
                || net.is_primary_output()
                || (allow_unused_inputs && net.is_primary_input()),
            "{} is floating (no fanout, not an output)",
            name()
        );
        assert!(
            net.loads().len() <= max_fanout,
            "{} fanout {} exceeds bound {max_fanout}",
            name(),
            net.loads().len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn adder_and_multiplier_structures_hold(
        bits in 1usize..=16,
        block in 1usize..=4,
        a_bits in 1usize..=6,
        b_bits in 1usize..=6,
    ) {
        // Ripple/skip carry chains fan out to a handful of gates per net;
        // the Kogge-Stone cin feeds one carry-combine AND per bit.
        assert_structure(&generators::ripple_carry_adder(bits), 8);
        assert_structure(&generators::carry_skip_adder(bits, block), 8 + bits.min(block));
        assert_structure(&generators::kogge_stone_adder(bits), bits + 2);
        assert_structure(&generators::multiplier(a_bits, b_bits), 8);
        assert_structure(&generators::wallace_tree_multiplier(a_bits, b_bits), 8);
    }

    #[test]
    fn parity_and_random_structures_hold(
        width in 1usize..=24,
        inputs in 2usize..=16,
        gates in 1usize..=200,
        seed in any::<u64>(),
    ) {
        // A parity-tree net feeds exactly one XOR above it.
        assert_structure(&generators::parity_tree(width), 1);
        // Random logic has no hard bound by construction; the recency
        // window keeps realistic circuits far below this ceiling.  A seeded
        // draw may also leave a primary input unpicked.
        assert_structure_with(&generators::random_logic(inputs, gates, seed), gates, true);
    }
}

#[test]
fn fixed_corpus_circuit_structures_hold() {
    assert_structure(&generators::c17(), 4);
    assert_structure(&iscas::c432(), 16);
    assert_structure(&iscas::c880(), 16);
    assert_structure(&generators::figure1_default().0, 4);
    assert_structure(&generators::inverter_chain(8), 2);
    assert_structure(&generators::buffer_fanout_tree(3), 4);
}

#[test]
fn kogge_stone_wide_case_spot_check() {
    // One deterministic wide case beyond the proptest width range.
    let adder = generators::kogge_stone_adder(16);
    assert_eq!(
        adder_value(&adder, 16, 0xFFFF, 0x0001, 0),
        0x1_0000,
        "carry must propagate across the whole prefix network"
    );
    assert_eq!(adder_value(&adder, 16, 0xAAAA, 0x5555, 1), 0x1_0000);
    assert_eq!(adder_value(&adder, 16, 0x1234, 0x4321, 0), 0x5555);
}
