//! End-to-end checks on the paper's evaluation vehicle: the 4×4 array
//! multiplier simulated with every engine in the workspace.

use halotis::analog::{AnalogConfig, AnalogSimulator};
use halotis::core::{LogicLevel, Time, TimeDelta};
use halotis::experiments::{
    multiplier_fixture, multiplier_stimulus, MultiplierFixture, SEQUENCE_FIG6, SEQUENCE_FIG7,
};
use halotis::netlist::eval;
use halotis::sim::{classical, SimulationConfig, Simulator};

fn final_product(fixture: &MultiplierFixture, level_of: impl Fn(&str) -> LogicLevel) -> u64 {
    let mut product = 0u64;
    for (bit, name) in fixture.ports.s.iter().enumerate() {
        if level_of(name) == LogicLevel::High {
            product |= 1 << bit;
        }
    }
    product
}

#[test]
fn all_engines_settle_to_the_functional_product() {
    let fixture = multiplier_fixture();
    let pairs = [(0x3u64, 0x9u64), (0xC, 0xB), (0x6, 0x7)];
    let stimulus = multiplier_stimulus(&fixture.ports, &pairs);
    let expected = pairs.last().unwrap().0 * pairs.last().unwrap().1;

    let simulator = Simulator::new(&fixture.netlist, &fixture.library);
    let (ddm, cdm) = simulator
        .run_both_models(&stimulus, &SimulationConfig::default())
        .unwrap();
    assert_eq!(
        final_product(&fixture, |n| ddm.ideal_waveform(n).unwrap().final_level()),
        expected
    );
    assert_eq!(
        final_product(&fixture, |n| cdm.ideal_waveform(n).unwrap().final_level()),
        expected
    );

    let classical_result = classical::run(
        &fixture.netlist,
        &fixture.library,
        &stimulus,
        &SimulationConfig::cdm(),
    )
    .unwrap();
    assert_eq!(
        final_product(&fixture, |n| classical_result
            .ideal_waveform(n)
            .unwrap()
            .final_level()),
        expected
    );

    let analog = AnalogSimulator::new(&fixture.netlist, &fixture.library)
        .run(
            &stimulus,
            &AnalogConfig::default()
                .with_time_step(TimeDelta::from_ps(4.0))
                .with_end_time(Time::from_ns(20.0)),
        )
        .unwrap();
    assert_eq!(
        final_product(&fixture, |n| analog
            .ideal_waveform(n)
            .unwrap()
            .final_level()),
        expected
    );

    // The timing engines also agree with the zero-delay functional model.
    let mut assignment = Vec::new();
    for (position, name) in fixture.ports.a.iter().enumerate() {
        let net = fixture.netlist.net_id(name).unwrap();
        assignment.push((
            net,
            LogicLevel::from_bool((pairs[2].0 >> position) & 1 == 1),
        ));
    }
    for (position, name) in fixture.ports.b.iter().enumerate() {
        let net = fixture.netlist.net_id(name).unwrap();
        assignment.push((
            net,
            LogicLevel::from_bool((pairs[2].1 >> position) & 1 == 1),
        ));
    }
    let outputs: Vec<_> = fixture
        .ports
        .s
        .iter()
        .map(|n| fixture.netlist.net_id(n).unwrap())
        .collect();
    assert_eq!(
        eval::evaluate_bus(&fixture.netlist, &assignment, &outputs),
        Some(expected)
    );
}

#[test]
fn cdm_overestimates_activity_on_both_paper_sequences() {
    let fixture = multiplier_fixture();
    let simulator = Simulator::new(&fixture.netlist, &fixture.library);
    for pairs in [SEQUENCE_FIG6, SEQUENCE_FIG7] {
        let stimulus = multiplier_stimulus(&fixture.ports, pairs);
        let (ddm, cdm) = simulator
            .run_both_models(&stimulus, &SimulationConfig::default())
            .unwrap();
        assert!(ddm.stats().events_scheduled < cdm.stats().events_scheduled);
        assert!(ddm.stats().events_filtered > 0);
        assert!(ddm.output_edge_count() <= cdm.output_edge_count());
        // Final values are identical: the delay model changes timing, not
        // function.
        for name in &fixture.ports.s {
            assert_eq!(
                ddm.ideal_waveform(name).unwrap().final_level(),
                cdm.ideal_waveform(name).unwrap().final_level(),
                "mismatch on {name}"
            );
        }
    }
}

#[test]
fn ddm_tracks_the_analog_reference_better_than_cdm() {
    use halotis::waveform::compare::compare_traces;
    let fixture = multiplier_fixture();
    let stimulus = multiplier_stimulus(&fixture.ports, SEQUENCE_FIG6);
    let simulator = Simulator::new(&fixture.netlist, &fixture.library);
    let (ddm, cdm) = simulator
        .run_both_models(&stimulus, &SimulationConfig::default())
        .unwrap();
    let analog = AnalogSimulator::new(&fixture.netlist, &fixture.library)
        .run(
            &stimulus,
            &AnalogConfig::default()
                .with_time_step(TimeDelta::from_ps(4.0))
                .with_end_time(Time::from_ns(25.0)),
        )
        .unwrap();
    let reference = analog.output_trace();
    let ddm_cmp = compare_traces(&reference, &ddm.output_trace(), TimeDelta::from_ns(1.0));
    let cdm_cmp = compare_traces(&reference, &cdm.output_trace(), TimeDelta::from_ns(1.0));
    assert!(ddm_cmp.final_levels_agree);
    // The DDM edge count stays closer to the reference than the CDM one.
    let ddm_excess = (ddm_cmp.test_edges as i64 - ddm_cmp.reference_edges as i64).abs();
    let cdm_excess = (cdm_cmp.test_edges as i64 - cdm_cmp.reference_edges as i64).abs();
    assert!(
        ddm_excess <= cdm_excess,
        "DDM excess {ddm_excess} vs CDM excess {cdm_excess}"
    );
}

#[test]
fn simulation_is_deterministic() {
    let fixture = multiplier_fixture();
    let stimulus = multiplier_stimulus(&fixture.ports, SEQUENCE_FIG7);
    let simulator = Simulator::new(&fixture.netlist, &fixture.library);
    let first = simulator.run(&stimulus, &SimulationConfig::ddm()).unwrap();
    let second = simulator.run(&stimulus, &SimulationConfig::ddm()).unwrap();
    assert_eq!(first.stats(), second.stats());
    for name in first.output_names() {
        assert_eq!(
            first.ideal_waveform(name).unwrap().changes(),
            second.ideal_waveform(name).unwrap().changes()
        );
    }
}
