//! Cross-engine property tests on randomly generated circuits and stimuli.

use halotis::core::{LogicLevel, Time, TimeDelta};
use halotis::netlist::{eval, generators, technology};
use halotis::sim::{classical, SimulationConfig, Simulator};
use halotis::waveform::Stimulus;
use proptest::prelude::*;

/// Builds a stimulus toggling every primary input of `netlist` at the given
/// times (same pattern on all inputs, offset by the input index so the
/// circuit sees staggered edges).
fn staggered_stimulus(
    netlist: &halotis::netlist::Netlist,
    edges_ns: &[f64],
    stagger_ps: f64,
) -> Stimulus {
    let library = technology::cmos06();
    let mut stimulus = Stimulus::new(library.default_input_slew());
    for (index, &input) in netlist.primary_inputs().iter().enumerate() {
        let name = netlist.net(input).name();
        stimulus.set_initial(name, LogicLevel::from_bool(index % 2 == 0));
        let mut level = index % 2 == 0;
        for &edge in edges_ns {
            level = !level;
            stimulus.drive(
                name,
                Time::from_ns(edge) + TimeDelta::from_ps(stagger_ps * index as f64),
                LogicLevel::from_bool(level),
            );
        }
    }
    stimulus
}

/// The level every primary input ends at, for the zero-delay reference.
fn final_assignment(
    netlist: &halotis::netlist::Netlist,
    stimulus: &Stimulus,
) -> Vec<(halotis::core::NetId, LogicLevel)> {
    netlist
        .primary_inputs()
        .iter()
        .map(|&net| {
            let waveform = stimulus.waveform(netlist.net(net).name()).unwrap();
            (net, waveform.final_target())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn timing_simulation_settles_to_the_zero_delay_solution(
        seed in 0u64..500,
        gates in 30usize..120,
    ) {
        let netlist = generators::random_logic(6, gates, seed);
        let library = technology::cmos06();
        let stimulus = staggered_stimulus(&netlist, &[2.0, 9.0], 40.0);
        let simulator = Simulator::new(&netlist, &library);
        let result = simulator.run(&stimulus, &SimulationConfig::ddm()).unwrap();
        let expected = eval::evaluate(&netlist, &final_assignment(&netlist, &stimulus));
        for &output in netlist.primary_outputs() {
            let name = netlist.net(output).name();
            let settled = result.ideal_waveform(name).unwrap().final_level();
            prop_assert_eq!(
                settled,
                expected[output.index()],
                "net {} settled wrong (seed {}, gates {})", name, seed, gates
            );
        }
    }

    #[test]
    fn ddm_never_schedules_more_events_than_cdm(
        seed in 0u64..500,
        gates in 30usize..100,
        pulse_ns in 0.15f64..1.2,
    ) {
        let netlist = generators::random_logic(5, gates, seed);
        let library = technology::cmos06();
        let stimulus = staggered_stimulus(&netlist, &[2.0, 2.0 + pulse_ns], 30.0);
        let simulator = Simulator::new(&netlist, &library);
        let (ddm, cdm) = simulator
            .run_both_models(&stimulus, &SimulationConfig::default())
            .unwrap();
        prop_assert!(ddm.stats().events_scheduled <= cdm.stats().events_scheduled);
        prop_assert!(ddm.stats().events_processed <= cdm.stats().events_processed);
    }

    #[test]
    fn classical_and_halotis_agree_functionally(
        seed in 0u64..200,
        gates in 20usize..80,
    ) {
        let netlist = generators::random_logic(4, gates, seed);
        let library = technology::cmos06();
        let stimulus = staggered_stimulus(&netlist, &[3.0], 60.0);
        let halotis = Simulator::new(&netlist, &library)
            .run(&stimulus, &SimulationConfig::cdm())
            .unwrap();
        let baseline = classical::run(&netlist, &library, &stimulus, &SimulationConfig::cdm())
            .unwrap();
        for &output in netlist.primary_outputs() {
            let name = netlist.net(output).name();
            prop_assert_eq!(
                halotis.ideal_waveform(name).unwrap().final_level(),
                baseline.ideal_waveform(name).unwrap().final_level(),
                "net {} differs (seed {})", name, seed
            );
        }
    }
}

#[test]
fn event_counts_scale_with_circuit_depth_not_explode() {
    // Regression guard against event storms: a long inverter chain driven by
    // one edge should process exactly one event per stage input.
    let library = technology::cmos06();
    for stages in [10usize, 50, 200] {
        let netlist = generators::inverter_chain(stages);
        let mut stimulus = Stimulus::new(library.default_input_slew());
        stimulus.set_initial("in", LogicLevel::Low);
        stimulus.drive("in", Time::from_ns(1.0), LogicLevel::High);
        let result = Simulator::new(&netlist, &library)
            .run(&stimulus, &SimulationConfig::ddm())
            .unwrap();
        assert_eq!(result.stats().events_processed, stages);
        assert_eq!(result.stats().events_filtered, 0);
    }
}
