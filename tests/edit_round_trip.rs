//! Round-trip stability of the mutation API through the text format.
//!
//! Every mutation kind ([`EditSession::insert_gate`], `remove_gate`,
//! `swap_cell_kind`, `rewire_input`, `expose_net`) is applied to a *parsed*
//! netlist, the result is emitted with [`writer::to_text`] and re-parsed.
//! The contract: the emitted text is a fixed point of the parse/emit pair,
//! the re-parsed structure matches the mutated one, and the simulation
//! fingerprint (exact engine counters of one seeded run per model column)
//! is identical — a mutated netlist that survives a trip through its own
//! serialisation cannot have lost or reordered anything behaviourally
//! relevant.
//!
//! [`EditSession::insert_gate`]: halotis::netlist::EditSession::insert_gate
//! [`writer::to_text`]: halotis::netlist::writer::to_text

use halotis::core::TimeDelta;
use halotis::corpus::{mixed_model, StimulusSuite};
use halotis::delay::DelayModelKind;
use halotis::netlist::{iscas, parser, technology, writer, CellKind, Netlist};
use halotis::sim::{CompiledCircuit, SimulationConfig, SimulationStats};

/// The fingerprint stimulus: 4 seeded random vectors shared by the three
/// model columns, mirroring the ISCAS golden suite's idiom.
fn fingerprint_stats(netlist: &Netlist) -> [SimulationStats; 3] {
    let library = technology::cmos06();
    let suite = StimulusSuite::RandomVectors {
        vectors: 4,
        period: TimeDelta::from_ns(6.0),
        seed: 0xF1,
    };
    let stimuli = suite.stimuli(netlist, &library);
    let (_, stimulus) = &stimuli[0];
    let circuit = CompiledCircuit::compile(netlist, &library).expect("mutated netlist compiles");
    let mut state = circuit.new_state();
    [
        SimulationConfig::default().model(DelayModelKind::Degradation),
        SimulationConfig::default().model(DelayModelKind::Conventional),
        SimulationConfig::default().model(mixed_model()),
    ]
    .map(|config| {
        circuit
            .run_stats(&mut state, stimulus, &config)
            .expect("fingerprint run succeeds")
    })
}

/// The shared property: emit the mutated netlist, re-parse it, and prove the
/// trip lost nothing — textually, structurally, or behaviourally.
fn assert_round_trip_stable(context: &str, mutated: &Netlist) {
    let text = writer::to_text(mutated);
    let reparsed = parser::parse(&text)
        .unwrap_or_else(|error| panic!("{context}: emitted text fails to parse: {error}"));
    assert_eq!(
        writer::to_text(&reparsed),
        text,
        "{context}: emitted text is not a parse/emit fixed point"
    );
    assert_eq!(reparsed.name(), mutated.name(), "{context}: circuit name");
    assert_eq!(
        reparsed.gate_count(),
        mutated.gate_count(),
        "{context}: gate count"
    );
    assert_eq!(
        reparsed.net_count(),
        mutated.net_count(),
        "{context}: net count"
    );
    assert_eq!(
        reparsed.gate_histogram(),
        mutated.gate_histogram(),
        "{context}: gate histogram"
    );
    assert_eq!(
        reparsed.primary_inputs().len(),
        mutated.primary_inputs().len(),
        "{context}: primary inputs"
    );
    assert_eq!(
        reparsed.primary_outputs().len(),
        mutated.primary_outputs().len(),
        "{context}: primary outputs"
    );
    assert_eq!(
        fingerprint_stats(mutated),
        fingerprint_stats(&reparsed),
        "{context}: simulation fingerprints diverge after the round trip"
    );
}

/// Every case starts from *parsed* text, exactly like a netlist loaded from
/// disk would — the mutation API must compose with the parser's output, not
/// just with generator-built netlists.
fn parsed_c432() -> Netlist {
    parser::parse(iscas::C432_TEXT).expect("committed c432 parses")
}

#[test]
fn swap_cell_kind_round_trips() {
    let mut netlist = parsed_c432();
    let gate = netlist
        .gates()
        .iter()
        .find(|gate| gate.kind() == CellKind::And2)
        .expect("c432 has an And2")
        .id();
    let mut session = netlist.begin_edit();
    session.swap_cell_kind(gate, CellKind::Nand2).unwrap();
    let log = session.finish();
    assert_eq!(log.edits(), 1);
    assert_round_trip_stable("swap_cell_kind", &netlist);
}

#[test]
fn insert_gate_round_trips() {
    let mut netlist = parsed_c432();
    let in1 = netlist.primary_inputs()[0];
    let in2 = netlist.primary_inputs()[1];
    let mut session = netlist.begin_edit();
    session
        .insert_gate(CellKind::Xor2, "rt_probe", &[in1, in2], "rt_probe_out")
        .unwrap();
    session.finish();
    assert_round_trip_stable("insert_gate", &netlist);
}

#[test]
fn rewire_input_round_trips() {
    let mut netlist = parsed_c432();
    // Rewiring to a primary input can never close a combinational loop.
    let target = netlist.primary_inputs()[2];
    let gate = netlist
        .gates()
        .iter()
        .find(|gate| gate.inputs().len() == 2 && !gate.inputs().contains(&target))
        .expect("c432 has a 2-input gate not reading that input")
        .id();
    let mut session = netlist.begin_edit();
    session.rewire_input(gate, 0, target).unwrap();
    session.finish();
    assert_round_trip_stable("rewire_input", &netlist);
}

#[test]
fn expose_net_round_trips() {
    let mut netlist = parsed_c432();
    let internal = netlist
        .nets()
        .iter()
        .find(|net| !net.is_primary_input() && !net.is_primary_output() && !net.loads().is_empty())
        .expect("c432 has an unexposed internal net")
        .id();
    let mut session = netlist.begin_edit();
    session.expose_net(internal).unwrap();
    session.finish();
    assert_round_trip_stable("expose_net", &netlist);
}

#[test]
fn remove_gate_round_trips() {
    // A hand-written source with a load-free, unexposed gate — the only
    // kind `remove_gate` accepts — parsed exactly as a file would be.
    let text = "circuit rt_remove\n\
                input a b\n\
                output y\n\
                gate nand2 keep a b -> y\n\
                gate nor2 dangler b a -> d\n";
    let mut netlist = parser::parse(text).expect("removal fixture parses");
    let doomed = netlist
        .gates()
        .iter()
        .find(|gate| gate.name() == "dangler")
        .expect("fixture has the dangler")
        .id();
    let mut session = netlist.begin_edit();
    let (moved_gate, moved_net) = session.remove_gate(doomed).unwrap();
    session.finish();
    // `dangler` was the last gate and `d` the last net: nothing renumbers.
    assert_eq!(moved_gate, None);
    assert_eq!(moved_net, None);
    assert_eq!(netlist.gate_count(), 1);
    assert_round_trip_stable("remove_gate", &netlist);
}

#[test]
fn full_mutation_mix_round_trips() {
    // All five kinds in one session, on the parsed benchmark: the emitted
    // text must absorb an arbitrary composition, not just single edits.
    let mut netlist = parsed_c432();
    let in1 = netlist.primary_inputs()[4];
    let in2 = netlist.primary_inputs()[5];
    let swap = netlist
        .gates()
        .iter()
        .find(|gate| gate.kind() == CellKind::Or2)
        .expect("c432 has an Or2")
        .id();
    let mut session = netlist.begin_edit();
    session.swap_cell_kind(swap, CellKind::Nor2).unwrap();
    let (doomed, _) = session
        .insert_gate(CellKind::And2, "rt_tmp", &[in1, in2], "rt_tmp_out")
        .unwrap();
    let (probe, probe_out) = session
        .insert_gate(CellKind::Xnor2, "rt_keep", &[in2, in1], "rt_keep_out")
        .unwrap();
    session.expose_net(probe_out).unwrap();
    session
        .rewire_input(probe, 1, netlist_input(&session, 6))
        .unwrap();
    session.remove_gate(doomed).unwrap();
    let log = session.finish();
    assert!(log.edits() >= 5);
    assert_round_trip_stable("full mutation mix", &netlist);
}

/// Reads a primary input through the live session (the netlist itself is
/// mutably borrowed while the session exists).
fn netlist_input(
    session: &halotis::netlist::EditSession<'_>,
    index: usize,
) -> halotis::core::NetId {
    session.netlist().primary_inputs()[index]
}
