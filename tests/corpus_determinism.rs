//! Determinism suite for the corpus subsystem — the property the
//! `corpus-golden` CI gate stands on.
//!
//! The gate diffs `CORPUS_stats.json` bit-exactly against a committed
//! golden, so everything upstream of the document must be a pure function
//! of the corpus definition: the generated netlists, the suite stimuli,
//! the batch statistics, the glitch counts and the energy sums — across
//! independent runs *and* across worker-thread counts.

use halotis::core::TimeDelta;
use halotis::corpus::{standard_corpus, CorpusEntry, CorpusRunner, StimulusSuite};
use halotis::netlist::{generators, technology};
use proptest::prelude::*;

/// Builds a seeded one-entry corpus over random logic: every knob that
/// could perturb the golden (netlist seed, suite seed, vector count) comes
/// from the property inputs.
fn seeded_entry(
    net_seed: u64,
    stim_seed: u64,
    inputs: usize,
    gates: usize,
    vectors: usize,
) -> CorpusEntry {
    CorpusEntry::new(
        format!("random{inputs}x{gates}"),
        generators::random_logic(inputs, gates, net_seed),
        StimulusSuite::RandomVectors {
            vectors,
            period: TimeDelta::from_ns(5.0),
            seed: stim_seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn same_seed_reproduces_netlist_stimuli_and_stats_bit_identically(
        net_seed in 0u64..1_000_000,
        stim_seed in 0u64..1_000_000,
        inputs in 4usize..12,
        gates in 20usize..120,
        vectors in 2usize..6,
    ) {
        let library = technology::cmos06();

        // Two independent constructions from the same seeds.
        let first = seeded_entry(net_seed, stim_seed, inputs, gates, vectors);
        let second = seeded_entry(net_seed, stim_seed, inputs, gates, vectors);
        prop_assert_eq!(&first.netlist, &second.netlist);
        prop_assert_eq!(
            first.suite.stimuli(&first.netlist, &library),
            second.suite.stimuli(&second.netlist, &library)
        );

        // Two independent runs produce bit-identical documents...
        let corpus_a = vec![first];
        let corpus_b = vec![second];
        let mut stats_a = CorpusRunner::new().run(&corpus_a).unwrap().stats;
        let mut stats_b = CorpusRunner::new().run(&corpus_b).unwrap().stats;
        stats_a.strip_timing();
        stats_b.strip_timing();
        prop_assert_eq!(&stats_a, &stats_b);
        prop_assert_eq!(stats_a.to_json(), stats_b.to_json());

        // ...and a different stimulus seed produces a different stimulus
        // (the corpus is seeded, not degenerate).
        let perturbed = seeded_entry(net_seed, stim_seed ^ 0xDEAD_BEEF, inputs, gates, vectors);
        prop_assert_ne!(
            corpus_a[0].suite.stimuli(&corpus_a[0].netlist, &library),
            perturbed.suite.stimuli(&perturbed.netlist, &library)
        );
    }

    #[test]
    fn thread_count_cannot_leak_into_the_golden(
        net_seed in 0u64..1_000_000,
        stim_seed in 0u64..1_000_000,
        probes in 2usize..6,
    ) {
        // A mixed two-entry corpus (random vectors + toggle probes) run
        // sequentially and with 4 workers: the stripped documents must be
        // bit-identical, scenario order included.
        let corpus = vec![
            seeded_entry(net_seed, stim_seed, 8, 60, 3),
            CorpusEntry::new(
                "probe",
                generators::parity_tree(probes + 2),
                StimulusSuite::ToggleProbes {
                    seed: stim_seed,
                    max_probes: probes,
                    pulse: TimeDelta::from_ps(600.0),
                },
            ),
        ];
        let mut sequential = CorpusRunner::new().with_threads(1).run(&corpus).unwrap().stats;
        let mut parallel = CorpusRunner::new().with_threads(4).run(&corpus).unwrap().stats;
        sequential.strip_timing();
        parallel.strip_timing();
        prop_assert_eq!(&sequential, &parallel);
        prop_assert_eq!(sequential.to_json(), parallel.to_json());
    }
}

/// The standard corpus itself — the exact workload behind the committed
/// golden — reproduces bit-identically across runs and thread counts.
#[test]
fn standard_corpus_document_is_bit_identical_across_runs_and_threads() {
    let corpus = standard_corpus();
    let mut one = CorpusRunner::new()
        .with_threads(1)
        .run(&corpus)
        .unwrap()
        .stats;
    let mut again = CorpusRunner::new()
        .with_threads(1)
        .run(&corpus)
        .unwrap()
        .stats;
    let mut four = CorpusRunner::new()
        .with_threads(4)
        .run(&corpus)
        .unwrap()
        .stats;
    one.strip_timing();
    again.strip_timing();
    four.strip_timing();
    assert_eq!(one.to_json(), again.to_json());
    assert_eq!(one.to_json(), four.to_json());
}

/// The committed golden matches what this tree computes — the same check
/// the `corpus-golden` CI job performs, kept in-tree so `cargo test` alone
/// catches a stale golden.
#[test]
fn committed_golden_matches_a_fresh_run() {
    let golden = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/CORPUS_stats.json"))
        .expect("committed CORPUS_stats.json exists");
    let mut stats = CorpusRunner::new().run(&standard_corpus()).unwrap().stats;
    stats.strip_timing();
    assert_eq!(
        stats.to_json(),
        golden,
        "CORPUS_stats.json is stale; regenerate with \
         `cargo run --release --bin halotis-corpus -- --deterministic --out CORPUS_stats.json`"
    );
}
