//! Cyclic netlists must be *rejected*, never panicked on.
//!
//! Before sequential support the levelizer asserted acyclicity with
//! `debug_assert!`/`panic!` paths that release builds either skipped
//! (miscompiling the schedule) or hit (killing the process).  These
//! regressions pin the contract at every entry point that accepts a
//! circuit from outside: the `.net` parser, the structural-Verilog
//! parser, the builder and the in-place edit API all return
//! [`NetlistError::CombinationalLoop`] — in release mode too, which is
//! how this suite runs under CI's `--release` pass.
//!
//! Register feedback is the legal counterpart: the same two-gate ring
//! broken by a DFF levelizes fine, because sequential outputs are level
//! sources.

use halotis::netlist::parser::{self, ParseError};
use halotis::netlist::verilog::{parse_verilog, VerilogError};
use halotis::netlist::{levelize, NetlistError};

/// A two-inverter ring in `.net` syntax: every net is driven, the gate
/// graph is cyclic.
const RING_NET: &str = "circuit ring\n\
     input en\n\
     wire a b\n\
     output b\n\
     gate nand2 u1 en b -> a\n\
     gate inv u2 a -> b\n";

/// The same ring with a DFF in the loop: legal sequential feedback.
const REGISTER_RING_NET: &str = "circuit toggler\n\
     input en ck\n\
     wire a b\n\
     output b\n\
     gate nand2 u1 en b -> a\n\
     gate dff u2 a ck -> b\n";

#[test]
fn net_parser_reports_the_ring_as_a_combinational_loop() {
    let err = parser::parse(RING_NET).unwrap_err();
    match err {
        ParseError::Netlist(NetlistError::CombinationalLoop { gate }) => {
            assert!(
                gate == "u1" || gate == "u2",
                "culprit names a gate on the loop, got {gate}"
            );
        }
        other => panic!("expected a combinational-loop error, got {other:?}"),
    }
}

#[test]
fn verilog_parser_reports_the_ring_as_a_combinational_loop() {
    let source = "module ring(en, b);\n\
         input en;\n\
         output b;\n\
         wire a;\n\
         nand u1(a, en, b);\n\
         not u2(b, a);\n\
         endmodule\n";
    let err = parse_verilog(source).unwrap_err();
    assert!(
        matches!(
            err,
            VerilogError::Netlist(NetlistError::CombinationalLoop { .. })
        ),
        "expected a combinational-loop error, got {err:?}"
    );
}

#[test]
fn breaking_the_ring_with_a_register_makes_it_legal() {
    let netlist = parser::parse(REGISTER_RING_NET).expect("register feedback is not a loop");
    let levels = levelize::levelize(&netlist).expect("levelizes with the register as a source");
    // The DFF is a source and the NAND reads only sources (a primary input
    // and the register output), so the whole ring collapses to one level.
    assert_eq!(levels.depth(), 1);
}

#[test]
fn edits_that_close_a_loop_are_refused_and_leave_the_netlist_reusable() {
    // Start from the legal register ring and try to replace the DFF's
    // breaking role: rewiring the NAND's feedback input from the register
    // output to its own output closes a one-gate loop.
    let mut netlist = parser::parse(REGISTER_RING_NET).unwrap();
    let u1 = netlist
        .gates()
        .iter()
        .find(|gate| gate.name() == "u1")
        .unwrap()
        .id();
    let a = netlist.net_id("a").unwrap();
    let mut edit = netlist.begin_edit();
    let err = edit
        .rewire_input(u1, 1, a)
        .expect_err("self-loop through u1 must be refused");
    assert!(matches!(err, NetlistError::CombinationalLoop { .. }));
    edit.finish();
    // The failed edit must not have corrupted the netlist.
    let levels = levelize::levelize(&netlist).expect("netlist still levelizes after refusal");
    assert_eq!(levels.depth(), 1);
}
