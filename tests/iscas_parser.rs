//! Golden tests for the committed ISCAS-85 netlist files.
//!
//! `circuits/c432.net` and `circuits/c880.net` enter the simulator through
//! the text parser, so this suite pins everything a parser (or netlist
//! file) regression could disturb, without paying for a full corpus run:
//!
//! * structural goldens — gate/net counts, I/O profile, levelization depth
//!   and the per-kind gate histogram of each parsed circuit,
//! * simulation fingerprints — the exact engine counters of one small
//!   seeded run per model column (DDM, CDM, MIX).
//!
//! Any intentional change to the committed files (regenerated via
//! `cargo test -p halotis_netlist --lib -- --ignored regenerate`) must
//! update these numbers *and* the corpus golden in the same commit.

use halotis::core::TimeDelta;
use halotis::corpus::{mixed_model, StimulusSuite};
use halotis::delay::DelayModelKind;
use halotis::netlist::{iscas, levelize, parser, technology, CellKind, Netlist};
use halotis::sim::{CompiledCircuit, SimulationConfig, SimulationStats};

/// One structural golden record.
struct StructureGolden {
    gates: usize,
    nets: usize,
    inputs: usize,
    outputs: usize,
    depth: usize,
    histogram: &'static [(CellKind, usize)],
}

fn assert_structure(name: &str, netlist: &Netlist, golden: &StructureGolden) {
    assert_eq!(netlist.name(), name);
    assert_eq!(netlist.gate_count(), golden.gates, "{name} gate count");
    assert_eq!(netlist.net_count(), golden.nets, "{name} net count");
    assert_eq!(
        netlist.primary_inputs().len(),
        golden.inputs,
        "{name} inputs"
    );
    assert_eq!(
        netlist.primary_outputs().len(),
        golden.outputs,
        "{name} outputs"
    );
    assert_eq!(
        levelize::levelize(netlist).unwrap().depth(),
        golden.depth,
        "{name} levelization depth"
    );
    assert_eq!(
        netlist.gate_histogram(),
        golden.histogram.to_vec(),
        "{name} gate histogram"
    );
}

#[test]
fn c432_structure_matches_the_golden() {
    assert_structure(
        "c432",
        &iscas::c432(),
        &StructureGolden {
            gates: 153,
            nets: 189,
            inputs: 36,
            outputs: 7,
            depth: 25,
            histogram: &[
                (CellKind::Inv, 45),
                (CellKind::Buf, 3),
                (CellKind::And2, 26),
                (CellKind::Or2, 42),
                (CellKind::Nor2, 28),
                (CellKind::Or3, 9),
            ],
        },
    );
}

#[test]
fn c880_structure_matches_the_golden() {
    assert_structure(
        "c880",
        &iscas::c880(),
        &StructureGolden {
            gates: 337,
            nets: 397,
            inputs: 60,
            outputs: 26,
            depth: 35,
            histogram: &[
                (CellKind::Inv, 14),
                (CellKind::And2, 158),
                (CellKind::Or2, 64),
                (CellKind::Xor2, 74),
                (CellKind::Xnor2, 8),
                (CellKind::And3, 1),
                (CellKind::And4, 4),
                (CellKind::Or4, 8),
                (CellKind::Nor4, 6),
            ],
        },
    );
}

/// The fingerprint stimulus: 4 seeded random vectors, shared by every model
/// column so the three fingerprints differ only through the delay model.
fn fingerprint_stats(netlist: &Netlist) -> [SimulationStats; 3] {
    let library = technology::cmos06();
    let suite = StimulusSuite::RandomVectors {
        vectors: 4,
        period: TimeDelta::from_ns(6.0),
        seed: 0xF1,
    };
    let stimuli = suite.stimuli(netlist, &library);
    let (_, stimulus) = &stimuli[0];
    let circuit = CompiledCircuit::compile(netlist, &library).expect("benchmark compiles");
    let mut state = circuit.new_state();
    [
        SimulationConfig::default().model(DelayModelKind::Degradation),
        SimulationConfig::default().model(DelayModelKind::Conventional),
        SimulationConfig::default().model(mixed_model()),
    ]
    .map(|config| {
        circuit
            .run_stats(&mut state, stimulus, &config)
            .expect("fingerprint run succeeds")
    })
}

fn stats(
    scheduled: usize,
    filtered: usize,
    processed: usize,
    transitions: usize,
    degraded: usize,
    collapsed: usize,
    peak: usize,
) -> SimulationStats {
    SimulationStats {
        events_scheduled: scheduled,
        events_filtered: filtered,
        events_processed: processed,
        output_transitions: transitions,
        degraded_transitions: degraded,
        collapsed_transitions: collapsed,
        queue_high_water: peak,
    }
}

#[test]
fn c432_simulation_fingerprints_are_pinned() {
    let [ddm, cdm, mix] = fingerprint_stats(&iscas::c432());
    assert_eq!(ddm, stats(436, 12, 424, 345, 107, 9, 88), "c432/ddm");
    assert_eq!(cdm, stats(634, 12, 622, 445, 0, 0, 88), "c432/cdm");
    // c432's cell mix contains none of the overridden classes, so the MIX
    // column must collapse onto pure degradation — itself a useful pin on
    // the composite dispatch.
    assert_eq!(mix, ddm, "c432/mix == c432/ddm");
}

#[test]
fn c880_simulation_fingerprints_are_pinned() {
    let [ddm, cdm, mix] = fingerprint_stats(&iscas::c880());
    assert_eq!(ddm, stats(1918, 157, 1761, 1248, 781, 74, 333), "c880/ddm");
    assert_eq!(cdm, stats(2631, 74, 2557, 1728, 0, 0, 333), "c880/cdm");
    // c880's XOR-heavy datapaths make all three columns distinct.
    assert_eq!(mix, stats(2185, 110, 2075, 1408, 464, 41, 333), "c880/mix");
}

#[test]
fn committed_text_round_trips_through_the_parser() {
    for text in [iscas::C432_TEXT, iscas::C880_TEXT] {
        let parsed = parser::parse(text).expect("committed netlist parses");
        let rendered = halotis::netlist::writer::to_text(&parsed);
        assert_eq!(rendered, text, "{}: parse/render round trip", parsed.name());
    }
}
