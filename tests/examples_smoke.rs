//! Smoke test: every example in `examples/` must build and run to
//! completion.
//!
//! The examples double as executable documentation of the public API, so a
//! change that breaks one of them is a regression even when the unit tests
//! still pass.  Each example is run through the same `cargo` binary driving
//! this test; the harness builds them first (`cargo build --examples` is
//! part of `--all-targets`), so the per-example cost here is dominated by
//! the simulations the examples run, not by compilation.

use std::process::Command;

const EXAMPLES: [&str; 7] = [
    "quickstart",
    "eco_loop",
    "inertial_chain",
    "multiplier_glitches",
    "switching_activity",
    "batch_sweep",
    "custom_model_observer",
];

#[test]
fn all_examples_run_to_completion() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    for example in EXAMPLES {
        let output = Command::new(&cargo)
            .args(["run", "--quiet", "--example", example])
            .current_dir(manifest_dir)
            .output()
            .unwrap_or_else(|error| panic!("failed to spawn cargo for `{example}`: {error}"));
        assert!(
            output.status.success(),
            "example `{example}` exited with {:?}\nstdout:\n{}\nstderr:\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(
            !output.stdout.is_empty(),
            "example `{example}` produced no output"
        );
    }
}
