//! The STA-vs-simulation differential layer: on every corpus entry, the
//! static-timing bound of `halotis_sim::sta` must dominate the settle time
//! the event-driven engine actually produces.
//!
//! The two sides share nothing but the compiled timing arcs: STA is a
//! topological longest-path pass over the fanout CSR, the engine is an
//! event queue over ramp crossings — so agreement here cross-checks the
//! graph export, the arc math and the engine's scheduling rules against
//! each other on all 24 corpus circuits.  The acceptance contract is the
//! Conventional column (STA bounds nominal scheduling directly); the
//! degradation and mixed columns are held too, since degradation only
//! shortens or cancels transitions.
//!
//! Sequential entries exercise the register-segmented pass: register
//! outputs are timing sources (arrival zero) and paths end at register
//! inputs, so the bound covers exactly one clock cycle's combinational
//! cone — which is also what the engine resolves between clock edges.

use halotis::core::{NetId, Time, TimeDelta};
use halotis::corpus::standard_corpus;
use halotis::netlist::technology;
use halotis::sim::observer::SimObserver;
use halotis::sim::{sta, CompiledCircuit};
use halotis::waveform::Transition;

/// Tracks the instant the last output ramp ends — "settled" in the
/// strongest sense: every net is at its final rail.
struct LastSettle(Time);

impl SimObserver for LastSettle {
    fn on_transition(&mut self, _net: NetId, transition: &Transition) {
        self.0 = self.0.max(transition.end());
    }
}

#[test]
fn sta_bound_dominates_simulated_settle_on_every_corpus_entry() {
    let library = technology::cmos06();
    let corpus = standard_corpus();
    assert!(corpus.len() >= 24, "corpus shrank to {}", corpus.len());

    for entry in &corpus {
        let circuit = CompiledCircuit::compile(&entry.netlist, &library)
            .unwrap_or_else(|err| panic!("{}: compile failed: {err}", entry.name));
        let report = sta::analyze(&circuit, library.default_input_slew());
        assert!(
            report.worst_arrival() > TimeDelta::ZERO,
            "{}: STA found no path",
            entry.name
        );

        let mut state = circuit.new_state();
        let mut checked = 0usize;
        let mut min_slack: Option<TimeDelta> = None;
        for scenario in entry.scenarios(&library) {
            let mut settle = LastSettle(Time::ZERO);
            let stats = circuit
                .run_observed(
                    &mut state,
                    &scenario.stimulus,
                    &scenario.config,
                    &mut settle,
                )
                .unwrap_or_else(|err| panic!("{}: run failed: {err}", scenario.label));
            let bound =
                report.settle_bound_with_margin(&scenario.stimulus, stats.output_transitions);
            assert!(
                settle.0 <= bound,
                "{}: simulated settle {} ps exceeds STA bound {} ps",
                scenario.label,
                settle.0.as_ps(),
                bound.as_ps()
            );
            let slack = bound.delta_since(settle.0);
            min_slack = Some(min_slack.map_or(slack, |s| s.min(slack)));
            checked += 1;
        }
        assert!(checked > 0, "{}: no scenarios ran", entry.name);
        // Slack report: how much headroom the topological bound leaves over
        // the worst observed settle across all model columns.
        println!(
            "{:<14} critical path {:>3} arcs, sta {:>9.1} ps, min slack {:>9.1} ps over {} scenarios",
            entry.name,
            report.critical_path().len(),
            report.worst_arrival().as_ps(),
            min_slack.expect("checked > 0").as_ps(),
            checked
        );
    }
}

/// The per-entry worst net must be reachable through the reported critical
/// path, and the path's arc count can never exceed the circuit depth.
#[test]
fn critical_paths_are_well_formed_on_the_corpus() {
    let library = technology::cmos06();
    for entry in standard_corpus() {
        let circuit = CompiledCircuit::compile(&entry.netlist, &library).unwrap();
        let report = sta::analyze(&circuit, library.default_input_slew());
        let path = report.critical_path();
        assert!(!path.is_empty(), "{}: empty critical path", entry.name);
        let start = path.first().unwrap().source;
        let starts_at_register = match entry.netlist.net(start).driver() {
            halotis::netlist::netlist::NetDriver::Gate(gate) => {
                entry.netlist.gate(gate).kind().is_sequential()
            }
            halotis::netlist::netlist::NetDriver::PrimaryInput => true,
        };
        assert!(
            entry.netlist.primary_inputs().contains(&start) || starts_at_register,
            "{}: critical path does not start at a timing source",
            entry.name
        );
        assert_eq!(
            path.last().unwrap().target,
            report.worst_net(),
            "{}: critical path does not end at the worst net",
            entry.name
        );
        for pair in path.windows(2) {
            assert_eq!(
                pair[0].target, pair[1].source,
                "{}: broken path",
                entry.name
            );
        }
        assert!(
            path.len() <= circuit.levels().depth(),
            "{}: path longer than circuit depth",
            entry.name
        );
    }
}

/// Register segmentation on the sequential corpus entry: every register
/// output is a timing source with zero arrival, no combinational arrival
/// exceeds the segment bound, and the clock net never accumulates
/// combinational delay.
#[test]
fn s27_is_register_segmented() {
    let library = technology::cmos06();
    let netlist = halotis::netlist::iscas::s27();
    let circuit = CompiledCircuit::compile(&netlist, &library).unwrap();
    let report = sta::analyze(&circuit, library.default_input_slew());

    let mut register_outputs = 0;
    for gate in netlist.gates() {
        if gate.kind().is_sequential() {
            assert_eq!(
                report.arrival(gate.output()),
                TimeDelta::ZERO,
                "register output {} must be a timing source",
                netlist.net(gate.output()).name()
            );
            register_outputs += 1;
        }
    }
    assert_eq!(register_outputs, 3, "s27 has three DFFs");

    // The clock is a pure source too: fanning out only to CK pins, it
    // accumulates no combinational arrival.
    let clk = netlist.net_id("clk").unwrap();
    assert_eq!(report.arrival(clk), TimeDelta::ZERO);

    // The worst segment is a genuine combinational path and it stays a
    // (per-cycle) bound: the deepest cone of s27 is a handful of arcs.
    assert!(report.worst_arrival() > TimeDelta::ZERO);
    let path = report.critical_path();
    assert!(!path.is_empty());
    for edge in &path {
        let target_gate = match netlist.net(edge.target).driver() {
            halotis::netlist::netlist::NetDriver::Gate(gate) => gate,
            halotis::netlist::netlist::NetDriver::PrimaryInput => {
                panic!("path edge targets a primary input")
            }
        };
        assert!(
            !netlist.gate(target_gate).kind().is_sequential(),
            "segmented paths never traverse a register"
        );
    }
}
