//! The STA-vs-simulation differential layer: on every corpus entry, the
//! static-timing bound of `halotis_sim::sta` must dominate the settle time
//! the event-driven engine actually produces.
//!
//! The two sides share nothing but the compiled timing arcs: STA is a
//! topological longest-path pass over the fanout CSR, the engine is an
//! event queue over ramp crossings — so agreement here cross-checks the
//! graph export, the arc math and the engine's scheduling rules against
//! each other on all 22 corpus circuits.  The acceptance contract is the
//! Conventional column (STA bounds nominal scheduling directly); the
//! degradation and mixed columns are held too, since degradation only
//! shortens or cancels transitions.

use halotis::core::{NetId, Time, TimeDelta};
use halotis::corpus::standard_corpus;
use halotis::netlist::technology;
use halotis::sim::observer::SimObserver;
use halotis::sim::{sta, CompiledCircuit};
use halotis::waveform::Transition;

/// Tracks the instant the last output ramp ends — "settled" in the
/// strongest sense: every net is at its final rail.
struct LastSettle(Time);

impl SimObserver for LastSettle {
    fn on_transition(&mut self, _net: NetId, transition: &Transition) {
        self.0 = self.0.max(transition.end());
    }
}

#[test]
fn sta_bound_dominates_simulated_settle_on_every_corpus_entry() {
    let library = technology::cmos06();
    let corpus = standard_corpus();
    assert!(corpus.len() >= 22, "corpus shrank to {}", corpus.len());

    for entry in &corpus {
        let circuit = CompiledCircuit::compile(&entry.netlist, &library)
            .unwrap_or_else(|err| panic!("{}: compile failed: {err}", entry.name));
        let report = sta::analyze(&circuit, library.default_input_slew());
        assert!(
            report.worst_arrival() > TimeDelta::ZERO,
            "{}: STA found no path",
            entry.name
        );

        let mut state = circuit.new_state();
        let mut checked = 0usize;
        let mut min_slack: Option<TimeDelta> = None;
        for scenario in entry.scenarios(&library) {
            let mut settle = LastSettle(Time::ZERO);
            let stats = circuit
                .run_observed(
                    &mut state,
                    &scenario.stimulus,
                    &scenario.config,
                    &mut settle,
                )
                .unwrap_or_else(|err| panic!("{}: run failed: {err}", scenario.label));
            let bound =
                report.settle_bound_with_margin(&scenario.stimulus, stats.output_transitions);
            assert!(
                settle.0 <= bound,
                "{}: simulated settle {} ps exceeds STA bound {} ps",
                scenario.label,
                settle.0.as_ps(),
                bound.as_ps()
            );
            let slack = bound.delta_since(settle.0);
            min_slack = Some(min_slack.map_or(slack, |s| s.min(slack)));
            checked += 1;
        }
        assert!(checked > 0, "{}: no scenarios ran", entry.name);
        // Slack report: how much headroom the topological bound leaves over
        // the worst observed settle across all model columns.
        println!(
            "{:<14} critical path {:>3} arcs, sta {:>9.1} ps, min slack {:>9.1} ps over {} scenarios",
            entry.name,
            report.critical_path().len(),
            report.worst_arrival().as_ps(),
            min_slack.expect("checked > 0").as_ps(),
            checked
        );
    }
}

/// The per-entry worst net must be reachable through the reported critical
/// path, and the path's arc count can never exceed the circuit depth.
#[test]
fn critical_paths_are_well_formed_on_the_corpus() {
    let library = technology::cmos06();
    for entry in standard_corpus() {
        let circuit = CompiledCircuit::compile(&entry.netlist, &library).unwrap();
        let report = sta::analyze(&circuit, library.default_input_slew());
        let path = report.critical_path();
        assert!(!path.is_empty(), "{}: empty critical path", entry.name);
        assert!(
            entry
                .netlist
                .primary_inputs()
                .contains(&path.first().unwrap().source),
            "{}: critical path does not start at a primary input",
            entry.name
        );
        assert_eq!(
            path.last().unwrap().target,
            report.worst_net(),
            "{}: critical path does not end at the worst net",
            entry.name
        );
        for pair in path.windows(2) {
            assert_eq!(
                pair[0].target, pair[1].source,
                "{}: broken path",
                entry.name
            );
        }
        assert!(
            path.len() <= circuit.levels().depth(),
            "{}: path longer than circuit depth",
            entry.name
        );
    }
}
