//! Equivalence suite for the incremental ECO path.
//!
//! The contract of `CompiledCircuit::apply_edits` is *latency only, no
//! behaviour change*: after any sequence of netlist edits, the incrementally
//! patched circuit must produce bit-identical waveforms and statistics to a
//! from-scratch compile of the mutated netlist — through the single-shot
//! run path and through a 2-thread batch.
//!
//! Each property drives a random edit script (kind swaps, gate inserts,
//! input rewires, gate removals, net exposures — including scripts whose
//! individual steps are legitimately rejected, e.g. a rewire that would
//! close a combinational loop) against circuits from three families:
//! `random_logic`, the ISCAS c17 benchmark, and an 8-bit Kogge–Stone adder.

use halotis::core::{LogicLevel, NetId, Time, TimeDelta};
use halotis::netlist::{generators, technology, CellKind, Library, Netlist};
use halotis::sim::{
    BatchRunner, CompiledCircuit, Scenario, SimulationConfig, SimulationError, SimulationResult,
};
use halotis::waveform::Stimulus;
use proptest::prelude::*;

/// One raw edit instruction: an opcode plus three operand seeds the driver
/// reduces modulo the current netlist dimensions.
type EditSeed = (u8, u32, u32, u32);

fn edit_script() -> impl Strategy<Value = Vec<EditSeed>> {
    proptest::collection::vec((0u8..5, any::<u32>(), any::<u32>(), any::<u32>()), 1..10)
}

/// Interprets one seed against the current netlist, returning the number of
/// mutations applied (0 when the step was a no-op or legitimately rejected).
fn apply_one_edit(
    circuit: &mut CompiledCircuit<'_>,
    step: usize,
    (op, a, b, c): EditSeed,
) -> usize {
    let outcome = circuit.edit(|session| {
        let netlist = session.netlist();
        let gate_count = netlist.gate_count();
        let net_count = netlist.net_count();
        match op {
            // Swap a gate's cell kind within its arity class.
            0 => {
                let gate = netlist.gates()[a as usize % gate_count].id();
                let arity = netlist.gate(gate).inputs().len();
                let kinds: Vec<CellKind> = CellKind::ALL
                    .into_iter()
                    .filter(|kind| kind.input_count() == arity)
                    .collect();
                session.swap_cell_kind(gate, kinds[b as usize % kinds.len()])
            }
            // Graft a fresh 2-input gate onto two existing nets and expose
            // it, so the new logic is observable.
            1 => {
                let kinds = [
                    CellKind::Nand2,
                    CellKind::Nor2,
                    CellKind::Xor2,
                    CellKind::And2,
                ];
                let in1 = netlist.nets()[a as usize % net_count].id();
                let in2 = netlist.nets()[b as usize % net_count].id();
                let kind = kinds[c as usize % kinds.len()];
                let (_, output) = session.insert_gate(
                    kind,
                    format!("eco_g{step}"),
                    &[in1, in2],
                    format!("eco_n{step}"),
                )?;
                session.expose_net(output)
            }
            // Rewire one input pin; may be rejected as a combinational loop.
            2 => {
                let gate = netlist.gates()[a as usize % gate_count].id();
                let pin = b as usize % netlist.gate(gate).inputs().len();
                let net = netlist.nets()[c as usize % net_count].id();
                session.rewire_input(gate, pin, net)
            }
            // Remove the first removable gate at or after a random start.
            3 => {
                let start = a as usize % gate_count;
                let target = (0..gate_count)
                    .map(|offset| netlist.gates()[(start + offset) % gate_count].id())
                    .find(|&gate| {
                        let net = netlist.net(netlist.gate(gate).output());
                        net.loads().is_empty() && !net.is_primary_output()
                    });
                match target {
                    Some(gate) => session.remove_gate(gate).map(|_| ()),
                    None => Ok(()),
                }
            }
            // Expose a net; may be rejected when it is a primary input.
            _ => {
                let net = netlist.nets()[a as usize % net_count].id();
                session.expose_net(net)
            }
        }
    });
    match outcome {
        Ok(log) => log.edits(),
        // Structurally invalid steps (loops, exposing a primary input) are
        // atomic rejections: the netlist is untouched, the circuit stays
        // consistent, the script simply moves on.
        Err(SimulationError::Netlist(_)) => 0,
        Err(error) => panic!("edit step {step} failed unexpectedly: {error}"),
    }
}

/// Drives random toggles into every primary input.
fn random_stimulus(
    netlist: &Netlist,
    library: &Library,
    polarity: u64,
    spread_ps: f64,
) -> Stimulus {
    let mut stimulus = Stimulus::new(library.default_input_slew());
    for (index, &input) in netlist.primary_inputs().iter().enumerate() {
        let name = netlist.net(input).name().to_string();
        let initial = if polarity & (1 << (index % 64)) != 0 {
            LogicLevel::High
        } else {
            LogicLevel::Low
        };
        stimulus.set_initial(&name, initial);
        stimulus.drive(
            &name,
            Time::from_ns(1.0) + TimeDelta::from_ps(spread_ps * (index as f64 + 1.0)),
            if initial == LogicLevel::High {
                LogicLevel::Low
            } else {
                LogicLevel::High
            },
        );
    }
    stimulus
}

fn assert_identical(context: &str, reference: &SimulationResult, candidate: &SimulationResult) {
    assert_eq!(
        reference.stats(),
        candidate.stats(),
        "{context}: statistics diverge"
    );
    for (name, waveform) in reference.waveforms().iter() {
        assert_eq!(
            Some(waveform),
            candidate.waveform(name),
            "{context}: waveform of net {name} diverges"
        );
    }
    assert_eq!(
        reference.waveforms().len(),
        candidate.waveforms().len(),
        "{context}: net sets diverge"
    );
}

/// The core property: apply `script` incrementally, then prove the patched
/// circuit indistinguishable from a fresh compile of the mutated netlist.
fn check_incremental_matches_fresh(
    context: &str,
    netlist: Netlist,
    script: &[EditSeed],
    polarity: u64,
    spread_ps: f64,
) {
    let library = technology::cmos06();
    let mut circuit = CompiledCircuit::compile(&netlist, &library).expect("base compile");
    let mut state = circuit.new_state();
    // Exercise arena reuse across the edit: run once before editing so a
    // stale-row bug in sync_state cannot hide behind a fresh arena.
    let warmup = random_stimulus(circuit.netlist(), &library, polarity, spread_ps);
    circuit
        .run_with(&mut state, &warmup, &SimulationConfig::ddm())
        .expect("pre-edit run");

    let mut edits = 0usize;
    for (step, &seed) in script.iter().enumerate() {
        edits += apply_one_edit(&mut circuit, step, seed);
    }
    circuit.sync_state(&mut state);

    let mutated = circuit.netlist().clone();
    let fresh =
        CompiledCircuit::compile(&mutated, &library).expect("fresh compile of edited netlist");
    assert_eq!(
        circuit.levels(),
        fresh.levels(),
        "{context}: incremental levelization diverges from fresh levelize"
    );
    assert_eq!(
        &mutated,
        fresh.netlist(),
        "{context}: netlist clone mismatch"
    );

    let stimulus = random_stimulus(&mutated, &library, polarity, spread_ps);
    let mut fresh_state = fresh.new_state();
    let mut scenarios = Vec::new();
    let mut references = Vec::new();
    for config in [SimulationConfig::ddm(), SimulationConfig::cdm()] {
        let reference = fresh
            .run_with(&mut fresh_state, &stimulus, &config)
            .expect("fresh run");
        let incremental = circuit
            .run_with(&mut state, &stimulus, &config)
            .expect("incremental run");
        assert_identical(
            &format!("{context} [{} after {edits} edits]", config.model),
            &reference,
            &incremental,
        );
        scenarios.push(Scenario::new(
            format!("{}", config.model),
            stimulus.clone(),
            config,
        ));
        references.push(reference);
    }

    // The patched circuit must also serve the parallel batch path.
    let report = BatchRunner::with_threads(2).run(&circuit, &scenarios);
    assert_eq!(report.failed(), 0, "{context}: batch scenarios failed");
    for (reference, outcome) in references.iter().zip(report.outcomes()) {
        assert_identical(
            &format!("{context} [batch {}]", outcome.label),
            reference,
            outcome.result.as_ref().expect("batch run succeeds"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_logic_edit_sequences_match_fresh_compile(
        inputs in 3usize..7,
        gates in 6usize..28,
        seed in any::<u64>(),
        script in edit_script(),
        polarity in any::<u64>(),
        spread_ps in 0.0f64..2000.0,
    ) {
        let netlist = generators::random_logic(inputs, gates, seed);
        check_incremental_matches_fresh(
            &format!("random_logic({inputs},{gates},{seed:#x})"),
            netlist,
            &script,
            polarity,
            spread_ps,
        );
    }

    #[test]
    fn c17_edit_sequences_match_fresh_compile(
        script in edit_script(),
        polarity in any::<u64>(),
        spread_ps in 0.0f64..2000.0,
    ) {
        check_incremental_matches_fresh("c17", generators::c17(), &script, polarity, spread_ps);
    }

    #[test]
    fn kogge_stone_edit_sequences_match_fresh_compile(
        script in edit_script(),
        polarity in any::<u64>(),
        spread_ps in 0.0f64..1000.0,
    ) {
        check_incremental_matches_fresh(
            "ks8",
            generators::kogge_stone_adder(8),
            &script,
            polarity,
            spread_ps,
        );
    }
}

/// Deterministic smoke check outside proptest: a scripted mix of every edit
/// kind on c17, including a remove that renumbers by swap_remove.
#[test]
fn scripted_edit_mix_matches_fresh_compile() {
    let netlist = generators::c17();
    let library = technology::cmos06();
    let mut circuit = CompiledCircuit::compile(&netlist, &library).unwrap();

    let i1 = circuit.netlist().net_id("i1").unwrap();
    let n10 = circuit.netlist().net_id("n10").unwrap();
    let first = circuit.netlist().gates()[0].id();
    let log = circuit
        .edit(|session| {
            session.swap_cell_kind(first, CellKind::And2)?;
            let (tmp, _) = session.insert_gate(CellKind::Inv, "tmp", &[i1], "tmp_out")?;
            let (keep, keep_out) =
                session.insert_gate(CellKind::Xor2, "keep", &[n10, i1], "keep_out")?;
            session.expose_net(keep_out)?;
            session.rewire_input(keep, 1, n10)?;
            // Removing `tmp` renumbers `keep` (the last gate) into its slot.
            session.remove_gate(tmp)?;
            Ok(())
        })
        .unwrap();
    assert!(log.edits() >= 5);

    let mutated = circuit.netlist().clone();
    let fresh = CompiledCircuit::compile(&mutated, &library).unwrap();
    assert_eq!(circuit.levels(), fresh.levels());

    let stimulus = random_stimulus(&mutated, &library, 0b10110, 333.0);
    let mut state = circuit.new_state();
    let mut fresh_state = fresh.new_state();
    for config in [SimulationConfig::ddm(), SimulationConfig::cdm()] {
        let reference = fresh
            .run_with(&mut fresh_state, &stimulus, &config)
            .unwrap();
        let incremental = circuit.run_with(&mut state, &stimulus, &config).unwrap();
        assert_identical("scripted mix", &reference, &incremental);
        let keep_wave = incremental.waveform("keep_out");
        assert!(keep_wave.is_some(), "exposed net must be recorded");
    }
}

/// A gate insert that reuses the pin block freed by a prior removal must
/// rebuild those dense rows — the hole-reuse path of the pin allocator.
#[test]
fn hole_reuse_matches_fresh_compile() {
    let netlist = generators::c17();
    let library = technology::cmos06();
    let mut circuit = CompiledCircuit::compile(&netlist, &library).unwrap();
    let pin_arena = circuit.pins().len();

    let i1 = circuit.netlist().net_id("i1").unwrap();
    let i2 = circuit.netlist().net_id("i2").unwrap();
    circuit
        .edit(|session| {
            let (doomed, _) =
                session.insert_gate(CellKind::Nand2, "doomed", &[i1, i2], "doomed_out")?;
            session.remove_gate(doomed).map(|_| ())
        })
        .unwrap();
    circuit
        .edit(|session| {
            let (_, out) =
                session.insert_gate(CellKind::Nor2, "reuser", &[i2, i1], "reuser_out")?;
            session.expose_net(out)
        })
        .unwrap();
    // The second 2-input gate must have slotted into the freed block.
    assert_eq!(circuit.pins().len(), pin_arena + 2);

    let mutated = circuit.netlist().clone();
    let fresh = CompiledCircuit::compile(&mutated, &library).unwrap();
    let stimulus = random_stimulus(&mutated, &library, 0b01011, 250.0);
    let reference = fresh.run(&stimulus, &SimulationConfig::ddm()).unwrap();
    let mut state = circuit.new_state();
    let incremental = circuit
        .run_with(&mut state, &stimulus, &SimulationConfig::ddm())
        .unwrap();
    assert_identical("hole reuse", &reference, &incremental);
}

/// `NetId` is part of the public edit API surface; keep it nameable here so
/// an accidental re-export removal fails this suite rather than downstream
/// users.
#[allow(dead_code)]
fn _edit_api_types(net: NetId) -> NetId {
    net
}
