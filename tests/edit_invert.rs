//! Property tests for [`EditLog::invert`]: applying an arbitrary invertible
//! edit script and then its inverse restores the netlist **exactly** —
//! structural equality over gates, nets, names, load-list order and
//! primary-output order, which is precisely the state the compiled tables
//! (and therefore bit-identical simulation) derive from.
//!
//! The generated scripts draw from the full mutation alphabet: kind swaps,
//! loop-free rewires, dangling-gate insertion, last-gate removal, and
//! expose/unexpose — each interpreted adaptively against the evolving
//! netlist so every generated op is valid by construction and the log stays
//! invertible (only non-renumbering removals are ever attempted).

use halotis::netlist::{generators, technology, CellKind, EditLog, Netlist};
use halotis::sim::{CompiledCircuit, SimulationConfig};
use proptest::prelude::*;

/// One abstract op: `(code, a, b, c)` selectors resolved against the
/// current netlist state at application time.
type AbstractOp = (u8, u32, u32, u32);

/// Interprets the abstract script inside one edit session and returns the
/// log. Every interpreted op is valid, so the session never errors.
fn apply_script(netlist: &mut Netlist, ops: &[AbstractOp]) -> EditLog {
    let mut session = netlist.begin_edit();
    let mut fresh = 0usize;
    for &(code, a, b, c) in ops {
        match code % 6 {
            0 => {
                // Swap a gate's kind for another of the same arity.
                let gates = session.netlist().gate_count();
                let gate = session.netlist().gates()[a as usize % gates].id();
                let arity = session.netlist().gates()[gate.index()].inputs().len();
                let candidates: Vec<CellKind> = CellKind::ALL
                    .into_iter()
                    .filter(|kind| kind.input_count() == arity)
                    .collect();
                let kind = candidates[b as usize % candidates.len()];
                session.swap_cell_kind(gate, kind).unwrap();
            }
            1 => {
                // Insert a dangling gate fed from existing nets.
                let kind = CellKind::ALL[a as usize % CellKind::ALL.len()];
                let nets = session.netlist().net_count();
                let inputs: Vec<_> = (0..kind.input_count())
                    .map(|pin| {
                        session.netlist().nets()[(b as usize + pin * (c as usize + 1)) % nets].id()
                    })
                    .collect();
                session
                    .insert_gate(
                        kind,
                        format!("prop_g{fresh}"),
                        &inputs,
                        format!("prop_n{fresh}"),
                    )
                    .unwrap();
                fresh += 1;
            }
            2 => {
                // Rewire a gate input to a primary input — never a loop.
                let gates = session.netlist().gate_count();
                let gate = session.netlist().gates()[a as usize % gates].id();
                let arity = session.netlist().gates()[gate.index()].inputs().len();
                let primaries = session.netlist().primary_inputs().to_vec();
                let net = primaries[c as usize % primaries.len()];
                session.rewire_input(gate, b as usize % arity, net).unwrap();
            }
            3 => {
                // Expose any non-primary-input net (idempotent).
                let nets = session.netlist().net_count();
                let net = session.netlist().nets()[a as usize % nets].id();
                if !session.netlist().primary_inputs().contains(&net) {
                    session.expose_net(net).unwrap();
                }
            }
            4 => {
                // Unexpose any net (idempotent no-op when not an output).
                let nets = session.netlist().net_count();
                let net = session.netlist().nets()[a as usize % nets].id();
                session.unexpose_net(net).unwrap();
            }
            _ => {
                // Remove the *last* gate when its output dangles — the only
                // removal shape that renumbers nothing.
                let Some(gate) = session.netlist().gates().last().map(|gate| gate.id()) else {
                    continue;
                };
                let output = session.netlist().gates()[gate.index()].output();
                let net = &session.netlist().nets()[output.index()];
                if net.loads().is_empty()
                    && !net.is_primary_output()
                    && output.index() == session.netlist().net_count() - 1
                {
                    let (moved_gate, moved_net) = session.remove_gate(gate).unwrap();
                    assert!(moved_gate.is_none() && moved_net.is_none());
                }
            }
        }
    }
    session.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// apply(script) ∘ apply(invert(script)) is the identity on the netlist.
    #[test]
    fn invert_round_trips_arbitrary_scripts(
        ops in proptest::collection::vec(
            (0u8..6, any::<u32>(), any::<u32>(), any::<u32>()),
            1..40,
        ),
    ) {
        let reference = generators::c17();
        let mut working = reference.clone();
        let log = apply_script(&mut working, &ops);
        prop_assert!(log.is_invertible(), "script alphabet never renumbers");

        let script = log.invert().expect("invertible log must invert");
        let mut session = working.begin_edit();
        script.apply(&mut session).expect("inverse script replays cleanly");
        let undo_log = session.finish();
        prop_assert!(undo_log.is_invertible());

        prop_assert_eq!(&working, &reference);
    }

    /// The inverse of the inverse replays the forward script's final state.
    #[test]
    fn double_inversion_restores_the_edited_state(
        ops in proptest::collection::vec(
            (0u8..6, any::<u32>(), any::<u32>(), any::<u32>()),
            1..24,
        ),
    ) {
        let mut working = generators::c17();
        let log = apply_script(&mut working, &ops);
        let edited = working.clone();

        let mut session = working.begin_edit();
        log.invert().unwrap().apply(&mut session).unwrap();
        let undo_log = session.finish();

        let mut session = working.begin_edit();
        undo_log.invert().unwrap().apply(&mut session).unwrap();
        session.finish();
        prop_assert_eq!(&working, &edited);
    }
}

/// Ties netlist-equality to behaviour once, deterministically: after a
/// round trip the fresh compile of the restored netlist reproduces the
/// reference compile's statistics bit for bit.
#[test]
fn round_tripped_netlist_simulates_identically() {
    let library = technology::cmos06();
    let reference = generators::c17();
    let mut working = reference.clone();

    let log = apply_script(
        &mut working,
        &[
            (0, 1, 3, 0),
            (1, 5, 2, 7),
            (2, 2, 1, 3),
            (3, 9, 0, 0),
            (5, 0, 0, 0),
        ],
    );
    let mut session = working.begin_edit();
    log.invert().unwrap().apply(&mut session).unwrap();
    session.finish();
    assert_eq!(working, reference);

    let suite = halotis::corpus::StimulusSuite::Exhaustive {
        period: halotis::core::TimeDelta::from_ns(4.0),
    };
    let config = SimulationConfig::default();
    let reference_circuit = CompiledCircuit::compile(&reference, &library).unwrap();
    let restored_circuit = CompiledCircuit::compile(&working, &library).unwrap();
    let mut reference_state = reference_circuit.new_state();
    let mut restored_state = restored_circuit.new_state();
    for (label, stimulus) in suite.stimuli(&reference, &library) {
        let want = reference_circuit
            .run_stats(&mut reference_state, &stimulus, &config)
            .unwrap();
        let got = restored_circuit
            .run_stats(&mut restored_state, &stimulus, &config)
            .unwrap();
        assert_eq!(got, want, "stats diverged for stimulus {label}");
    }
}
