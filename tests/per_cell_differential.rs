//! Differential guard on the composite delay-model dispatch.
//!
//! A [`PerCellOverride`] that maps **every** cell class of a circuit to the
//! *same* underlying model must be bit-identical — waveforms, statistics,
//! batch outcomes — to running that model directly.  If the composite path
//! ever consulted the wrong class, fell back where it should override, or
//! perturbed numerics, this suite fails on the first diverging bit.
//!
//! Circuits: ISCAS-85 c17 (the corpus's NAND-only classic) and the new
//! Kogge-Stone adder (XOR/AND/OR mix with reconvergent prefix fanout).

use halotis::core::{LogicLevel, Time};
use halotis::delay::{
    Conventional, Degradation, DelayModelHandle, DelayModelKind, PerCellOverride,
};
use halotis::netlist::{generators, technology, CellKind, Library, Netlist};
use halotis::sim::{BatchRunner, CompiledCircuit, Scenario, SimulationConfig};
use halotis::waveform::Stimulus;

/// Wraps `kind` in a `PerCellOverride` that pins every cell class used by
/// `netlist` (plus the default) to the same built-in model.
fn uniform_override(netlist: &Netlist, kind: DelayModelKind) -> DelayModelHandle {
    let mut composite = match kind {
        DelayModelKind::Degradation => PerCellOverride::new(Degradation),
        DelayModelKind::Conventional => PerCellOverride::new(Conventional),
    };
    let mut classes: Vec<CellKind> = netlist.gates().iter().map(|gate| gate.kind()).collect();
    classes.sort();
    classes.dedup();
    for cell in classes {
        composite = match kind {
            DelayModelKind::Degradation => composite.with(cell.class(), Degradation),
            DelayModelKind::Conventional => composite.with(cell.class(), Conventional),
        };
    }
    DelayModelHandle::new(composite)
}

/// A stimulus toggling every primary input at staggered times, then a
/// simultaneous-edge step — enough activity to exercise degradation state.
fn stimulus_for(netlist: &Netlist, library: &Library) -> Stimulus {
    let mut stimulus = Stimulus::new(library.default_input_slew());
    let inputs: Vec<String> = netlist
        .primary_inputs()
        .iter()
        .map(|&net| netlist.net(net).name().to_string())
        .collect();
    for (index, name) in inputs.iter().enumerate() {
        let start = LogicLevel::from_bool(index % 2 == 0);
        stimulus.set_initial(name, start);
        stimulus.drive(name, Time::from_ps(1000.0 + 180.0 * index as f64), !start);
        stimulus.drive(name, Time::from_ps(2600.0 + 90.0 * index as f64), start);
    }
    for name in &inputs {
        stimulus.drive(name, Time::from_ns(6.0), LogicLevel::High);
    }
    stimulus
}

fn check_circuit(context: &str, netlist: &Netlist) {
    let library = technology::cmos06();
    let stimulus = stimulus_for(netlist, &library);
    let circuit = CompiledCircuit::compile(netlist, &library).expect("circuit compiles");
    let mut state = circuit.new_state();

    for kind in DelayModelKind::both() {
        let plain_config = SimulationConfig::default().model(kind);
        let composite_config = SimulationConfig::default().model(uniform_override(netlist, kind));

        let plain = circuit
            .run_with(&mut state, &stimulus, &plain_config)
            .expect("plain run succeeds");
        let composite = circuit
            .run_with(&mut state, &stimulus, &composite_config)
            .expect("composite run succeeds");

        assert_eq!(
            plain.stats(),
            composite.stats(),
            "{context}/{kind:?}: statistics diverge"
        );
        for (name, waveform) in plain.waveforms().iter() {
            assert_eq!(
                Some(waveform),
                composite.waveform(name),
                "{context}/{kind:?}: waveform of {name} diverges"
            );
        }
        assert_eq!(plain.waveforms().len(), composite.waveforms().len());

        // The same equivalence must hold through the parallel batch path
        // (arbitrary worker threads, reused arenas).
        let scenarios = [
            Scenario::new("plain", stimulus.clone(), plain_config),
            Scenario::new("composite", stimulus.clone(), composite_config),
        ];
        let report = BatchRunner::with_threads(2).run(&circuit, &scenarios);
        let outcomes = report.outcomes();
        let batch_plain = outcomes[0].result.as_ref().expect("batch plain succeeds");
        let batch_composite = outcomes[1]
            .result
            .as_ref()
            .expect("batch composite succeeds");
        assert_eq!(
            batch_plain.stats(),
            batch_composite.stats(),
            "{context}/{kind:?}: batch statistics diverge"
        );
        assert_eq!(
            batch_plain.stats(),
            plain.stats(),
            "{context}/{kind:?}: batch diverges from single-shot"
        );
    }
}

#[test]
fn uniform_override_is_bit_identical_on_c17() {
    check_circuit("c17", &generators::c17());
}

#[test]
fn uniform_override_is_bit_identical_on_the_kogge_stone_adder() {
    check_circuit("ks8", &generators::kogge_stone_adder(8));
}

/// The negative control: an override that actually *mixes* models must
/// diverge from both pure models on an XOR-bearing circuit — otherwise the
/// suite above could pass vacuously with a dispatch that ignores classes.
#[test]
fn mixing_models_is_observable_on_the_kogge_stone_adder() {
    let netlist = generators::kogge_stone_adder(8);
    let library = technology::cmos06();
    let stimulus = stimulus_for(&netlist, &library);
    let circuit = CompiledCircuit::compile(&netlist, &library).expect("circuit compiles");
    let mut state = circuit.new_state();

    let mixed = DelayModelHandle::new(
        PerCellOverride::new(Degradation).with(CellKind::Xor2.class(), Conventional),
    );
    let mixed_stats = circuit
        .run_stats(
            &mut state,
            &stimulus,
            &SimulationConfig::default().model(mixed),
        )
        .expect("mixed run succeeds");
    let ddm_stats = circuit
        .run_stats(
            &mut state,
            &stimulus,
            &SimulationConfig::default().model(DelayModelKind::Degradation),
        )
        .expect("ddm run succeeds");
    let cdm_stats = circuit
        .run_stats(
            &mut state,
            &stimulus,
            &SimulationConfig::default().model(DelayModelKind::Conventional),
        )
        .expect("cdm run succeeds");
    assert_ne!(mixed_stats, ddm_stats, "override must be observable");
    assert_ne!(mixed_stats, cdm_stats, "fallback must be observable");
}
