//! Golden regression test for the delay models.
//!
//! Pins the numeric outputs of the conventional model
//! (`halotis_delay::nominal`) and the degradation model
//! (`halotis_delay::degradation`, paper eq. 1–3) on a small grid of
//! (input slew, load, elapsed time) points, so that future performance
//! refactors cannot silently change the numerics.
//!
//! All times are compared in integer femtoseconds (the engine's native
//! resolution), so the comparison is exact — any change to these numbers is
//! a deliberate model change and must update this table.
//!
//! Regenerate the table with:
//!
//! ```text
//! cargo test --test delay_model_golden -- --ignored regenerate --nocapture
//! ```

use halotis::core::{Capacitance, TimeDelta, Voltage};
use halotis::delay::{degradation, nominal, EdgeTiming};

/// The grid: every combination of these slews and loads (and, for the
/// degradation model, elapsed times) is pinned.
const SLEWS_PS: [f64; 3] = [50.0, 200.0, 800.0];
const LOADS_FF: [f64; 3] = [5.0, 20.0, 100.0];
const ELAPSED_PS: [f64; 3] = [100.0, 500.0, 2000.0];

fn vdd() -> Voltage {
    Voltage::from_volts(5.0)
}

fn grid() -> impl Iterator<Item = (TimeDelta, Capacitance)> {
    SLEWS_PS.into_iter().flat_map(|slew| {
        LOADS_FF.into_iter().map(move |load| {
            (
                TimeDelta::from_ps(slew),
                Capacitance::from_femtofarads(load),
            )
        })
    })
}

#[test]
fn nominal_timing_matches_golden_table() {
    // (input slew ps, load fF) -> (delay fs, output slew fs)
    let golden: [(i64, i64); 9] = GOLDEN_NOMINAL;
    let arc = EdgeTiming::example();
    for (index, (slew, load)) in grid().enumerate() {
        let timing = nominal::timing(&arc, load, slew);
        let (expected_delay, expected_slew) = golden[index];
        assert_eq!(
            (timing.delay.as_fs(), timing.output_slew.as_fs()),
            (expected_delay, expected_slew),
            "nominal timing drifted at slew {} load {}",
            slew,
            load,
        );
    }
}

#[test]
fn degradation_matches_golden_table() {
    // (slew, load, elapsed) -> (degraded delay fs, factor * 1e12 rounded)
    let golden: [(i64, i64); 27] = GOLDEN_DEGRADATION;
    let arc = EdgeTiming::example();
    let mut index = 0;
    for (slew, load) in grid() {
        let tp0 = nominal::timing(&arc, load, slew).delay;
        for elapsed_ps in ELAPSED_PS {
            let evaluation = degradation::evaluate(
                tp0,
                &arc.degradation,
                vdd(),
                load,
                slew,
                Some(TimeDelta::from_ps(elapsed_ps)),
            );
            let (expected_delay, expected_factor) = golden[index];
            assert_eq!(
                (
                    evaluation.delay.as_fs(),
                    (evaluation.factor * 1e12).round() as i64,
                ),
                (expected_delay, expected_factor),
                "degradation drifted at slew {} load {} elapsed {} ps",
                slew,
                load,
                elapsed_ps,
            );
            index += 1;
        }
    }
}

#[test]
fn quiet_gate_is_never_degraded_anywhere_on_the_grid() {
    let arc = EdgeTiming::example();
    for (slew, load) in grid() {
        let tp0 = nominal::timing(&arc, load, slew).delay;
        let fresh = degradation::evaluate(tp0, &arc.degradation, vdd(), load, slew, None);
        assert_eq!(fresh.delay, tp0);
        assert!(fresh.is_undegraded());
    }
}

/// Prints the tables in the exact source form above.  Run with
/// `cargo test --test delay_model_golden -- --ignored regenerate --nocapture`
/// after a *deliberate* model change, and paste the output over the
/// constants below.
#[test]
#[ignore = "generator for the golden tables, not a check"]
fn regenerate() {
    let arc = EdgeTiming::example();
    println!("const GOLDEN_NOMINAL: [(i64, i64); 9] = [");
    for (slew, load) in grid() {
        let timing = nominal::timing(&arc, load, slew);
        println!(
            "    ({}, {}), // slew {} load {}",
            timing.delay.as_fs(),
            timing.output_slew.as_fs(),
            slew,
            load,
        );
    }
    println!("];");
    println!("const GOLDEN_DEGRADATION: [(i64, i64); 27] = [");
    for (slew, load) in grid() {
        let tp0 = nominal::timing(&arc, load, slew).delay;
        for elapsed_ps in ELAPSED_PS {
            let evaluation = degradation::evaluate(
                tp0,
                &arc.degradation,
                vdd(),
                load,
                slew,
                Some(TimeDelta::from_ps(elapsed_ps)),
            );
            println!(
                "    ({}, {}), // slew {} load {} elapsed {} ps",
                evaluation.delay.as_fs(),
                (evaluation.factor * 1e12).round() as i64,
                slew,
                load,
                elapsed_ps,
            );
        }
    }
    println!("];");
}

const GOLDEN_NOMINAL: [(i64, i64); 9] = [
    (172500, 220000), // slew 50 ps load 5 fF
    (217500, 280000), // slew 50 ps load 20 fF
    (457500, 600000), // slew 50 ps load 100 fF
    (195000, 220000), // slew 200 ps load 5 fF
    (240000, 280000), // slew 200 ps load 20 fF
    (480000, 600000), // slew 200 ps load 100 fF
    (285000, 220000), // slew 800 ps load 5 fF
    (330000, 280000), // slew 800 ps load 20 fF
    (570000, 600000), // slew 800 ps load 100 fF
];

const GOLDEN_DEGRADATION: [(i64, i64); 27] = [
    (57674, 334340329421),  // slew 50 ps load 5 fF elapsed 100 ps
    (154633, 896423194615), // slew 50 ps load 5 fF elapsed 500 ps
    (172483, 999903327932), // slew 50 ps load 5 fF elapsed 2000 ps
    (62153, 285761587660),  // slew 50 ps load 20 fF elapsed 100 ps
    (184145, 846645033155), // slew 50 ps load 20 fF elapsed 500 ps
    (217396, 999521201525), // slew 50 ps load 20 fF elapsed 2000 ps
    (73448, 160542979231),  // slew 50 ps load 100 fF elapsed 100 ps
    (284934, 622807646437), // slew 50 ps load 100 fF elapsed 500 ps
    (448908, 981220698505), // slew 50 ps load 100 fF elapsed 2000 ps
    (40462, 207496327788),  // slew 200 ps load 5 fF elapsed 100 ps
    (170954, 876686237349), // slew 200 ps load 5 fF elapsed 500 ps
    (194978, 999884906699), // slew 200 ps load 5 fF elapsed 2000 ps
    (41987, 174947033019),  // slew 200 ps load 20 fF elapsed 100 ps
    (197484, 822851910216), // slew 200 ps load 20 fF elapsed 500 ps
    (239867, 999446915630), // slew 200 ps load 20 fF elapsed 2000 ps
    (45678, 95162581964),   // slew 200 ps load 100 fF elapsed 100 ps
    (284847, 593430340259), // slew 200 ps load 100 fF elapsed 500 ps
    (470284, 979758088554), // slew 200 ps load 100 fF elapsed 2000 ps
    (0, 0),                 // slew 800 ps load 5 fF elapsed 100 ps (inside the T0 dead-band)
    (214392, 752253401940), // slew 800 ps load 5 fF elapsed 500 ps
    (284934, 999768768925), // slew 800 ps load 5 fF elapsed 2000 ps
    (0, 0),                 // slew 800 ps load 20 fF elapsed 100 ps (inside the T0 dead-band)
    (225911, 684578725361), // slew 800 ps load 20 fF elapsed 500 ps
    (329675, 999015204865), // slew 800 ps load 20 fF elapsed 2000 ps
    (0, 0),                 // slew 800 ps load 100 fF elapsed 100 ps (inside the T0 dead-band)
    (257177, 451188363906), // slew 800 ps load 100 fF elapsed 500 ps
    (554425, 972676277553), // slew 800 ps load 100 fF elapsed 2000 ps
];
