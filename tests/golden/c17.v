module c17(i1, i2, i3, i6, i7, o22, o23);
  input i1, i2, i3, i6, i7;
  output o22, o23;
  wire i1, i2, i3, i6, i7, n10, n11, n16, n19, o22, o23;
  nand g10 (n10, i1, i3);
  nand g11 (n11, i3, i6);
  nand g16 (n16, i2, n11);
  nand g19 (n19, n11, i7);
  nand g22 (o22, n10, n16);
  nand g23 (o23, n16, n19);
endmodule
