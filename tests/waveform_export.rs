//! Integration tests of the I/O surface: netlist text round-trips, VCD
//! export of real simulation results and ASCII figure rendering.

use halotis::core::{LogicLevel, Time};
use halotis::experiments::{multiplier_fixture, multiplier_stimulus, SEQUENCE_FIG6};
use halotis::netlist::{generators, parser, technology, writer};
use halotis::sim::{SimulationConfig, Simulator};
use halotis::waveform::ascii::{render_trace, AsciiOptions};
use halotis::waveform::vcd;

#[test]
fn generated_multiplier_round_trips_through_the_text_format() {
    let original = generators::multiplier(4, 4);
    let text = writer::to_text(&original);
    let reparsed = parser::parse(&text).expect("writer output must be parseable");
    assert_eq!(reparsed.gate_count(), original.gate_count());
    assert_eq!(reparsed.net_count(), original.net_count());
    assert_eq!(
        reparsed.primary_outputs().len(),
        original.primary_outputs().len()
    );
    // The reparsed circuit is still simulatable and functionally identical.
    let library = technology::cmos06();
    let fixture_ports = generators::MultiplierPorts::new(4, 4);
    let stimulus = {
        let mut stimulus = halotis::waveform::Stimulus::new(library.default_input_slew());
        for bit in fixture_ports
            .a_refs()
            .iter()
            .chain(fixture_ports.b_refs().iter())
        {
            stimulus.set_initial(*bit, LogicLevel::Low);
        }
        stimulus.drive_bus_value(&fixture_ports.a_refs(), 0x9, Time::from_ns(1.0));
        stimulus.drive_bus_value(&fixture_ports.b_refs(), 0xE, Time::from_ns(1.0));
        stimulus
    };
    let result = Simulator::new(&reparsed, &library)
        .run(&stimulus, &SimulationConfig::ddm())
        .unwrap();
    let mut product = 0u64;
    for (bit, name) in fixture_ports.s.iter().enumerate() {
        if result.ideal_waveform(name).unwrap().final_level() == LogicLevel::High {
            product |= 1 << bit;
        }
    }
    assert_eq!(product, 0x9 * 0xE);
}

#[test]
fn simulation_results_export_to_vcd() {
    let fixture = multiplier_fixture();
    let stimulus = multiplier_stimulus(&fixture.ports, SEQUENCE_FIG6);
    let result = Simulator::new(&fixture.netlist, &fixture.library)
        .run(&stimulus, &SimulationConfig::ddm())
        .unwrap();
    let text = vcd::to_string("mult4x4", &result.output_trace());
    assert!(text.contains("$timescale 1 fs $end"));
    assert!(text.contains("$scope module mult4x4 $end"));
    for bit in 0..8 {
        assert!(
            text.contains(&format!(" s{bit} $end")),
            "missing s{bit} declaration"
        );
    }
    // There is at least one timestamped change section after the header.
    let changes = text
        .lines()
        .filter(|line| line.starts_with('#') && *line != "#0")
        .count();
    assert!(changes > 10, "only {changes} change timestamps in the VCD");
}

#[test]
fn ascii_rendering_covers_the_paper_window() {
    let fixture = multiplier_fixture();
    let stimulus = multiplier_stimulus(&fixture.ports, SEQUENCE_FIG6);
    let result = Simulator::new(&fixture.netlist, &fixture.library)
        .run(&stimulus, &SimulationConfig::ddm())
        .unwrap();
    let options = AsciiOptions::new(Time::ZERO, Time::from_ns(25.0), 100);
    let text = render_trace(&result.output_trace(), &options);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 8);
    for line in lines {
        // name column + space + 100 waveform glyphs
        assert_eq!(line.chars().count(), "s0".len() + 1 + 100);
    }
}
