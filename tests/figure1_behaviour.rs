//! Integration test for the paper's Fig. 1 claim: only a per-input inertial
//! treatment can reproduce the electrical behaviour of a marginal pulse
//! driving inputs with different thresholds.

use halotis::core::TimeDelta;
use halotis::experiments::figure1::{figure1_experiment, find_selective_pulse};

#[test]
fn a_selective_pulse_width_exists_and_halotis_reproduces_it() {
    let widths: Vec<f64> = (4..30).map(|i| i as f64 * 25.0).collect();
    let report = find_selective_pulse(&widths)
        .expect("the electrical reference should be selective for some pulse width");
    let analog = report.analog_activity();
    assert!(analog.is_selective());
    // The surviving branch is the low-threshold one: the partial-swing pulse
    // crosses the low threshold but never reaches the high one.
    assert!(analog.low_branch_pulsed);
    assert!(!analog.high_branch_pulsed);
    // HALOTIS agrees with the reference branch by branch.
    assert_eq!(report.halotis_activity(), analog);
    // The classical simulator cannot be selective, so it is wrong here.
    assert!(!report.classical_activity().is_selective());
    assert!(report.classical_disagrees_with_analog());
}

#[test]
fn extreme_pulse_widths_are_uncontroversial() {
    // Very wide pulse: everybody propagates it to both branches.
    let wide = figure1_experiment(TimeDelta::from_ns(3.0));
    assert!(wide.analog_activity().low_branch_pulsed);
    assert!(wide.analog_activity().high_branch_pulsed);
    assert!(wide.halotis_matches_analog());
    assert!(!wide.classical_disagrees_with_analog());

    // Very narrow pulse: nobody sees anything downstream of the branches.
    let narrow = figure1_experiment(TimeDelta::from_ps(30.0));
    assert!(!narrow.analog_activity().high_branch_pulsed);
    assert!(!narrow.halotis_activity().high_branch_pulsed);
}

#[test]
fn halotis_filters_events_per_input_not_per_net() {
    // In the selective regime the HALOTIS run must show filtered events:
    // the same out0 pulse was dropped at the high-threshold input while it
    // survived at the low-threshold one.
    let widths: Vec<f64> = (4..30).map(|i| i as f64 * 25.0).collect();
    if let Some(report) = find_selective_pulse(&widths) {
        assert!(report.halotis_activity().is_selective());
        assert!(report.halotis.stats().events_filtered > 0);
    }
}
