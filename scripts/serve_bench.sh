#!/usr/bin/env bash
# Measures the halotis-serve daemon end to end: build, start on a private
# Unix-domain socket, replay the standard corpus with halotis-load, convert
# the latency report into the machine-readable bench JSON the perf gate
# consumes (serve/load/p50..p99, serve/simulate/p50..p99,
# serve/request_period).
#
# usage: scripts/serve_bench.sh [OUT_JSON] [CLIENTS] [REPEATS]
#
# The committed BENCH_serve.json baseline was captured with the defaults
# (4 clients, 2 repeats) — regenerate by committing this script's output,
# not by loosening the CI gate's tolerance.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_serve_fresh.json}
CLIENTS=${2:-4}
REPEATS=${3:-2}
SOCK=$(mktemp -u "${TMPDIR:-/tmp}/halotis-serve.XXXXXX.sock")
TIMING=serve_timing.txt

cargo build --release --bin halotis-serve --bin halotis-load

# --cache 32 holds the whole 22-entry corpus, so the capture measures the
# steady-state serve path rather than eviction/recompile churn (the load
# generator tolerates eviction by re-loading, but that is not the number
# this baseline tracks).
target/release/halotis-serve --uds "$SOCK" --workers 4 --cache 32 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -f "$SOCK"' EXIT

for _ in $(seq 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "halotis-serve did not come up on $SOCK" >&2; exit 1; }

target/release/halotis-load --uds "$SOCK" \
  --clients "$CLIENTS" --repeats "$REPEATS" --timing "$TIMING" --shutdown
wait "$SERVE_PID"
trap - EXIT

python3 scripts/bench_to_json.py "$OUT" "$TIMING"
echo "wrote $OUT"
