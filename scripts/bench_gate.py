#!/usr/bin/env python3
"""CI perf-regression gate over `bench_to_json.py` documents.

Compares a freshly measured bench document against the committed baseline
(`BENCH_api.json`) and fails when any shared measurement regressed beyond
the tolerance, when a baseline measurement disappeared from the fresh run
(silent coverage shrink), or when the fresh run carries measurements the
baseline has never seen — an un-ratcheted bench would otherwise drift along
unguarded until its first regression was already the committed norm.  Pass
`--allow-new` in the same change that adds a bench to acknowledge the new
names (and follow up by committing the fresh document as the baseline).

The default tolerance is generous (±35%) because shared CI runners are
noisy; the gate is meant to catch step-function regressions (an accidental
recompile-per-run, a lost fast path), not single-digit drift.

When both documents record the measuring environment (`environment.cpu_count`
and `environment.rustc`, written by `bench_to_json.py`), a mismatch prints a
non-fatal WARNING: a delta measured on different hardware or a different
compiler is a re-baselining question, not a code regression.

Usage:
    bench_gate.py BASELINE.json FRESH.json [--tolerance 0.35] [--metric median_ns]
                  [--allow-new]
    bench_gate.py --self-test

Exit codes: 0 gate passed, 1 regression / lost coverage, 2 usage error.
"""

import argparse
import copy
import json
import sys

DEFAULT_TOLERANCE = 0.35
DEFAULT_METRIC = "median_ns"


def flatten(document: dict, metric: str) -> dict:
    """Maps measurement name -> metric value for a halotis-bench-v1 doc."""
    if document.get("schema") != "halotis-bench-v1":
        raise ValueError(f"unexpected schema: {document.get('schema')!r}")
    values = {}
    for bench in document.get("benches", []):
        for measurement in bench.get("measurements", []):
            values[measurement["name"]] = float(measurement[metric])
    return values


def environment_warnings(baseline: dict, fresh: dict) -> list:
    """Non-fatal warnings when the measuring environment changed.

    A perf delta measured on different hardware (core count) or with a
    different compiler is not evidence of a code regression; these warnings
    put that caveat next to the verdict without failing the gate — the
    tolerance band still decides.  Documents from before the environment was
    recorded simply produce no warning for the missing keys.
    """
    warnings = []
    base_env = baseline.get("environment", {})
    fresh_env = fresh.get("environment", {})
    for key in ("cpu_count", "rustc"):
        base_value = base_env.get(key)
        fresh_value = fresh_env.get(key)
        if base_value is None or fresh_value is None:
            continue
        if base_value != fresh_value:
            warnings.append(
                f"WARNING: environment mismatch on {key}: baseline measured "
                f"with {base_value!r}, fresh run with {fresh_value!r} — "
                "perf deltas may reflect the environment, not the code"
            )
    return warnings


def gate(baseline: dict, fresh: dict, tolerance: float, metric: str,
         allow_new: bool = False) -> list:
    """Returns a list of failure strings; empty means the gate passes."""
    for warning in environment_warnings(baseline, fresh):
        print(warning)
    base = flatten(baseline, metric)
    new = flatten(fresh, metric)
    failures = []
    for name in sorted(base):
        if name not in new:
            failures.append(f"LOST: {name} present in baseline but not measured")
            continue
        ratio = new[name] / base[name] if base[name] > 0 else float("inf")
        verdict = f"{name}: {base[name]:.0f} ns -> {new[name]:.0f} ns ({ratio:.2f}x)"
        if ratio > 1.0 + tolerance:
            failures.append(f"REGRESSION: {verdict} exceeds +{tolerance:.0%}")
        else:
            print(f"ok: {verdict}")
    for name in sorted(set(new) - set(base)):
        if allow_new:
            print(f"new measurement (allowed by --allow-new): {name}")
        else:
            failures.append(
                f"NEW: {name} measured but absent from the baseline "
                "(pass --allow-new and re-baseline to adopt it)"
            )
    return failures


def self_test() -> int:
    """Verifies the gate trips on an injected 2x slowdown and stays quiet
    inside the tolerance band."""
    baseline = {
        "schema": "halotis-bench-v1",
        "unit": "nanoseconds",
        "benches": [
            {
                "capture": "synthetic.txt",
                "measurements": [
                    {"name": "g/fast", "median_ns": 1000.0, "mean_ns": 1000.0, "min_ns": 900.0},
                    {"name": "g/slow", "median_ns": 50000.0, "mean_ns": 50000.0, "min_ns": 48000.0},
                ],
            }
        ],
    }

    # An injected 2x slowdown on one measurement must trip the gate.
    slowed = copy.deepcopy(baseline)
    slowed["benches"][0]["measurements"][0]["median_ns"] *= 2.0
    failures = gate(baseline, slowed, DEFAULT_TOLERANCE, DEFAULT_METRIC)
    assert any("REGRESSION" in f and "g/fast" in f for f in failures), failures
    assert len(failures) == 1, failures

    # Noise inside the tolerance band must pass.
    noisy = copy.deepcopy(baseline)
    for measurement in noisy["benches"][0]["measurements"]:
        measurement["median_ns"] *= 1.0 + DEFAULT_TOLERANCE - 0.01
    assert gate(baseline, noisy, DEFAULT_TOLERANCE, DEFAULT_METRIC) == []

    # A measurement vanishing from the fresh run must trip the gate.
    shrunk = copy.deepcopy(baseline)
    del shrunk["benches"][0]["measurements"][1]
    failures = gate(baseline, shrunk, DEFAULT_TOLERANCE, DEFAULT_METRIC)
    assert any("LOST" in f and "g/slow" in f for f in failures), failures

    # Speed-ups never fail.
    faster = copy.deepcopy(baseline)
    for measurement in faster["benches"][0]["measurements"]:
        measurement["median_ns"] *= 0.5
    assert gate(baseline, faster, DEFAULT_TOLERANCE, DEFAULT_METRIC) == []

    # A measurement the baseline has never seen must trip the gate —
    # un-ratcheted benches drift unguarded — unless explicitly allowed.
    grown = copy.deepcopy(baseline)
    grown["benches"][0]["measurements"].append(
        {"name": "g/unseen", "median_ns": 10.0, "mean_ns": 10.0, "min_ns": 9.0}
    )
    failures = gate(baseline, grown, DEFAULT_TOLERANCE, DEFAULT_METRIC)
    assert any("NEW" in f and "g/unseen" in f for f in failures), failures
    assert len(failures) == 1, failures
    assert gate(baseline, grown, DEFAULT_TOLERANCE, DEFAULT_METRIC,
                allow_new=True) == []

    # Environment drift warns but never fails: a different core count or
    # compiler must show up next to the verdict, not flip it.
    moved = copy.deepcopy(baseline)
    moved["environment"] = {"cpu_count": 4, "rustc": "rustc 1.0.0"}
    fresh_env = copy.deepcopy(baseline)
    fresh_env["environment"] = {"cpu_count": 16, "rustc": "rustc 2.0.0"}
    warnings = environment_warnings(moved, fresh_env)
    assert len(warnings) == 2, warnings
    assert any("cpu_count" in w for w in warnings), warnings
    assert any("rustc" in w for w in warnings), warnings
    assert gate(moved, fresh_env, DEFAULT_TOLERANCE, DEFAULT_METRIC) == []
    # Identical environments and pre-environment documents stay silent.
    assert environment_warnings(moved, copy.deepcopy(moved)) == []
    assert environment_warnings(baseline, fresh_env) == []

    print("bench_gate self-test passed: 2x slowdown, lost coverage and "
          "unacknowledged new measurements trip; noise, speed-ups, "
          "--allow-new and environment drift (warn-only) pass")
    return 0


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?", help="committed baseline JSON")
    parser.add_argument("fresh", nargs="?", help="freshly measured JSON")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed slowdown fraction (default 0.35 = +35%%)")
    parser.add_argument("--metric", default=DEFAULT_METRIC,
                        choices=["median_ns", "mean_ns", "min_ns"])
    parser.add_argument("--allow-new", action="store_true",
                        help="tolerate measurements absent from the baseline "
                             "(use when adding a bench; re-baseline after)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate trips on an injected 2x slowdown")
    args = parser.parse_args(argv[1:])

    if args.self_test:
        return self_test()
    if not args.baseline or not args.fresh:
        parser.print_usage(sys.stderr)
        return 2

    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(args.fresh, encoding="utf-8") as handle:
        fresh = json.load(handle)
    failures = gate(baseline, fresh, args.tolerance, args.metric, args.allow_new)
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        print(f"bench gate FAILED ({len(failures)} problem(s), tolerance +{args.tolerance:.0%})",
              file=sys.stderr)
        print("note: the baseline is only meaningful on the hardware class that measured it; "
              "if the runner hardware changed (not the code), re-baseline by committing the "
              "fresh document over the baseline", file=sys.stderr)
        return 1
    print(f"bench gate passed (tolerance +{args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
