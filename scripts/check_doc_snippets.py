#!/usr/bin/env python3
"""Validates the netlist snippets embedded in the Markdown documentation.

FORMATS.md (and any other documented Markdown file) promises that every
fenced code block tagged ```net or ```verilog is a complete, parseable
circuit.  This script makes that promise mechanical: it extracts each such
block and feeds it through the *real* parsers via
`halotis-corpus --import FILE --format {net,verilog}` — which also verifies
the round-trip identity and compiles the circuit — so a grammar change that
invalidates a documented example fails CI instead of silently rotting the
docs.

Blocks tagged with any other language (```json, ```text, plain ```) are
ignored: fragments and wire-protocol excerpts are not required to parse.

Usage:
    check_doc_snippets.py [--binary PATH] [FILES...]
    check_doc_snippets.py --self-test

With no FILES, checks FORMATS.md and PROTOCOL.md relative to the
repository root (the script's parent directory).  `--binary` points at the
`halotis-corpus` executable (default: target/release/halotis-corpus, as
built by the CI release build).

Exit codes: 0 all snippets parse, 1 a snippet failed or no snippets were
found where some were expected, 2 usage error.
"""

import argparse
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_FILES = ["FORMATS.md", "PROTOCOL.md"]
DEFAULT_BINARY = os.path.join("target", "release", "halotis-corpus")
CHECKED_TAGS = {"net": "net", "verilog": "verilog"}
EXTENSIONS = {"net": ".net", "verilog": ".v"}


def extract_snippets(text):
    """Yields (start_line, tag, body) for each checked fenced block.

    Only fences opened exactly as ```net or ```verilog are extracted; the
    closing fence is a line that is ``` after stripping.  An unterminated
    fence is reported as a snippet error by the caller (tag "unterminated").
    """
    snippets = []
    tag = None
    body = []
    start = 0
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if tag is None:
            if stripped.startswith("```"):
                fence_tag = stripped[3:].strip()
                if fence_tag in CHECKED_TAGS:
                    tag = fence_tag
                    body = []
                    start = number
                else:
                    # Uninteresting block: skip to its closing fence so a
                    # ``` inside it cannot open a phantom checked block.
                    tag = ""
        elif stripped == "```":
            if tag in CHECKED_TAGS:
                snippets.append((start, tag, "\n".join(body) + "\n"))
            tag = None
        elif tag in CHECKED_TAGS:
            body.append(line)
    if tag in CHECKED_TAGS:
        snippets.append((start, "unterminated", ""))
    return snippets


def check_file(path, binary):
    """Runs every checked snippet of one Markdown file. Returns (ran, failures)."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    failures = []
    ran = 0
    for start, tag, body in extract_snippets(text):
        where = f"{path}:{start}"
        if tag == "unterminated":
            failures.append(f"{where}: unterminated fenced block")
            continue
        ran += 1
        with tempfile.NamedTemporaryFile(
            "w", suffix=EXTENSIONS[tag], delete=False, encoding="utf-8"
        ) as snippet:
            snippet.write(body)
            snippet_path = snippet.name
        try:
            result = subprocess.run(
                [binary, "--import", snippet_path, "--format", CHECKED_TAGS[tag]],
                capture_output=True,
                text=True,
            )
            if result.returncode != 0:
                detail = (result.stderr or result.stdout).strip()
                failures.append(f"{where}: {tag} snippet rejected: {detail}")
        finally:
            os.unlink(snippet_path)
    return ran, failures


def self_test():
    """Exercises extraction and verdicts without the Rust binary."""
    sample = "\n".join(
        [
            "# Doc",
            "```net",
            "circuit t",
            "```",
            "```json",
            '{"op":"load"}',
            "```",
            "```",
            "plain block, ignored",
            "```",
            "```verilog",
            "module t; endmodule",
            "```",
        ]
    )
    snippets = extract_snippets(sample)
    assert [(s[0], s[1]) for s in snippets] == [(2, "net"), (11, "verilog")], snippets
    assert snippets[0][2] == "circuit t\n", snippets[0]

    unterminated = extract_snippets("```net\ncircuit t")
    assert unterminated and unterminated[-1][1] == "unterminated", unterminated

    # A fake "binary" that accepts .net and rejects .v proves both verdict
    # paths without needing cargo artifacts in the lint job.
    with tempfile.TemporaryDirectory() as scratch:
        fake = os.path.join(scratch, "fake-corpus")
        with open(fake, "w", encoding="utf-8") as handle:
            handle.write(
                "#!/bin/sh\n"
                'case "$2" in *.net) exit 0 ;; *) echo "line 1: no" >&2; exit 1 ;; esac\n'
            )
        os.chmod(fake, 0o755)
        doc = os.path.join(scratch, "doc.md")
        with open(doc, "w", encoding="utf-8") as handle:
            handle.write("```net\ncircuit ok\n```\n```verilog\nbroken\n```\n")
        ran, failures = check_file(doc, fake)
        assert ran == 2, ran
        assert len(failures) == 1 and "verilog snippet rejected" in failures[0], failures

    print(
        "check_doc_snippets self-test passed: extraction, tag filtering, "
        "unterminated fences and both verdict paths behave"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="Markdown files to check")
    parser.add_argument("--binary", default=None, help="halotis-corpus executable")
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the script's own extraction and verdict logic, then exit",
    )
    args = parser.parse_args()
    if args.self_test:
        return self_test()

    binary = args.binary or os.path.join(REPO_ROOT, DEFAULT_BINARY)
    if not os.path.exists(binary):
        print(
            f"error: {binary} not found — build it first "
            "(cargo build --release) or pass --binary",
            file=sys.stderr,
        )
        return 2
    files = args.files or [os.path.join(REPO_ROOT, name) for name in DEFAULT_FILES]

    total_ran = 0
    all_failures = []
    for path in files:
        ran, failures = check_file(path, binary)
        total_ran += ran
        all_failures.extend(failures)
        print(f"{path}: {ran} snippet(s) checked, {len(failures)} failure(s)")
    for failure in all_failures:
        print(f"FAIL {failure}", file=sys.stderr)
    if all_failures:
        return 1
    if total_ran == 0:
        print("error: no ```net/```verilog snippets found at all", file=sys.stderr)
        return 1
    print(f"all {total_ran} documented snippets parse, round-trip and compile")
    return 0


if __name__ == "__main__":
    sys.exit(main())
