#!/usr/bin/env python3
"""Convert the bench harness's stdout into machine-readable JSON.

The vendored criterion stand-in prints one line per measurement:

    group/function/param    median 45.438µs  mean 46.1µs  min 44.9µs [rate]

This script parses any number of such capture files and writes a single JSON
document mapping every measurement to nanosecond numbers, so successive runs
can be diffed mechanically (the BENCH_api.json perf trajectory).

Values are rounded to integer nanoseconds at emission: the captures carry
sub-nanosecond decimals only as formatting residue of Rust's `Duration`
rendering, and emitting them verbatim made every regeneration of the
committed baselines a spurious diff.

The document also records the measuring environment (`cpu_count`,
`rustc`): a baseline is only meaningful on the hardware class that
produced it, so the gate's consumers can tell a code regression from a
runner change.

Usage:
    bench_to_json.py OUTPUT.json CAPTURE.txt [CAPTURE.txt ...]
"""

import json
import os
import re
import subprocess
import sys

# Duration rendering of Rust's `std::fmt::Debug for Duration`.
_UNIT_NS = {"ns": 1.0, "µs": 1e3, "us": 1e3, "ms": 1e6, "s": 1e9}

_LINE = re.compile(
    r"^(?P<name>\S+)\s+"
    r"median\s+(?P<median>[\d.]+)(?P<median_unit>ns|µs|us|ms|s)\s+"
    r"mean\s+(?P<mean>[\d.]+)(?P<mean_unit>ns|µs|us|ms|s)\s+"
    r"min\s+(?P<min>[\d.]+)(?P<min_unit>ns|µs|us|ms|s)"
)


def _ns(value: str, unit: str) -> int:
    return round(float(value) * _UNIT_NS[unit])


def _rustc_version() -> "str | None":
    try:
        out = subprocess.run(
            ["rustc", "--version"], capture_output=True, text=True, timeout=30
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None


def parse_capture(path: str) -> list:
    measurements = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            match = _LINE.match(line.strip())
            if not match:
                continue
            measurements.append(
                {
                    "name": match["name"],
                    "median_ns": _ns(match["median"], match["median_unit"]),
                    "mean_ns": _ns(match["mean"], match["mean_unit"]),
                    "min_ns": _ns(match["min"], match["min_unit"]),
                }
            )
    return measurements


def main(argv: list) -> int:
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    output, captures = argv[1], argv[2:]
    benches = []
    for capture in captures:
        measurements = parse_capture(capture)
        if not measurements:
            print(f"warning: no measurements parsed from {capture}", file=sys.stderr)
        benches.append({"capture": capture, "measurements": measurements})
    document = {
        "schema": "halotis-bench-v1",
        "unit": "nanoseconds",
        "environment": {
            "cpu_count": os.cpu_count(),
            "rustc": _rustc_version(),
        },
        "benches": benches,
    }
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    total = sum(len(b["measurements"]) for b in benches)
    print(f"wrote {total} measurements from {len(captures)} capture(s) to {output}")
    return 0 if total else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
