#!/usr/bin/env python3
"""Golden-stats gate: diff two `CORPUS_stats.json` documents bit-exactly,
wall-clock timing excluded.

Every field the corpus emits is a deterministic function of the corpus
definition except the `wall_time_ns` timing fields, which this script masks
on both sides before comparing the canonicalised documents.  Any other
difference — one event, one glitch, one bit of an energy mantissa — fails
the gate with a unified diff.

Usage:
    corpus_diff.py GOLDEN.json FRESH.json
    corpus_diff.py --self-test

Exit codes: 0 documents match, 1 mismatch, 2 usage error.
"""

import argparse
import copy
import difflib
import json
import math
import sys

TIMING_KEYS = {"wall_time_ns"}


def mask_timing(node):
    """Recursively nulls every timing field in place."""
    if isinstance(node, dict):
        for key, value in node.items():
            if key in TIMING_KEYS:
                node[key] = None
            else:
                mask_timing(value)
    elif isinstance(node, list):
        for value in node:
            mask_timing(value)


def canonical(document: dict) -> str:
    masked = copy.deepcopy(document)
    mask_timing(masked)
    return json.dumps(masked, indent=2, sort_keys=True)


def diff(golden: dict, fresh: dict, golden_name: str, fresh_name: str) -> list:
    """Returns unified-diff lines; empty means the documents match."""
    return list(
        difflib.unified_diff(
            canonical(golden).splitlines(),
            canonical(fresh).splitlines(),
            fromfile=golden_name,
            tofile=fresh_name,
            lineterm="",
        )
    )


def self_test() -> int:
    golden = {
        "schema": "halotis-corpus-v1",
        "totals": {"events_processed": 100, "energy_joules": 1.25e-13},
        "entries": [
            {"name": "e", "wall_time_ns": None,
             "scenarios": [
                 {"label": "e/s/ddm", "model": "DDM",
                  "glitch_pulses": 3, "queue_high_water": 17,
                  "events_per_cycle": 14.25, "wall_time_ns": None},
                 {"label": "e/s/cdm", "model": "CDM",
                  "glitch_pulses": 5, "queue_high_water": 17,
                  "events_per_cycle": None, "wall_time_ns": None},
                 {"label": "e/s/mix", "model": "MIX",
                  "glitch_pulses": 4, "queue_high_water": 17,
                  "events_per_cycle": 14.25, "wall_time_ns": None},
             ]}
        ],
    }

    # Timing differences alone must pass.
    timed = copy.deepcopy(golden)
    timed["entries"][0]["wall_time_ns"] = 123456
    timed["entries"][0]["scenarios"][0]["wall_time_ns"] = 7890
    timed["entries"][0]["scenarios"][2]["wall_time_ns"] = 4242
    assert diff(golden, timed, "golden", "timed") == []

    # A single-count drift must fail.
    drifted = copy.deepcopy(golden)
    drifted["entries"][0]["scenarios"][0]["glitch_pulses"] = 4
    assert diff(golden, drifted, "golden", "drifted") != []

    # An energy drift of one ULP must fail (bit-exactness, not tolerance).
    warmed = copy.deepcopy(golden)
    warmed["totals"]["energy_joules"] = math.nextafter(1.25e-13, 1.0)
    assert diff(golden, warmed, "golden", "warmed") != []

    # The third model column is gated like the other two: a drift in a MIX
    # scenario's counts, its model label, or the column disappearing
    # entirely must all fail.
    mix_drift = copy.deepcopy(golden)
    mix_drift["entries"][0]["scenarios"][2]["glitch_pulses"] = 9
    assert diff(golden, mix_drift, "golden", "mix_drift") != []
    relabelled = copy.deepcopy(golden)
    relabelled["entries"][0]["scenarios"][2]["model"] = "DDM+overrides"
    assert diff(golden, relabelled, "golden", "relabelled") != []
    dropped = copy.deepcopy(golden)
    del dropped["entries"][0]["scenarios"][2]
    assert diff(golden, dropped, "golden", "dropped") != []

    # The sequential telemetry is part of the golden contract, not timing:
    # a queue high-water drift, an events-per-cycle drift, or a clocked
    # scenario losing its events-per-cycle number must all fail.
    queue_drift = copy.deepcopy(golden)
    queue_drift["entries"][0]["scenarios"][0]["queue_high_water"] = 18
    assert diff(golden, queue_drift, "golden", "queue_drift") != []
    rate_drift = copy.deepcopy(golden)
    rate_drift["entries"][0]["scenarios"][0]["events_per_cycle"] = 14.5
    assert diff(golden, rate_drift, "golden", "rate_drift") != []
    unclocked = copy.deepcopy(golden)
    unclocked["entries"][0]["scenarios"][2]["events_per_cycle"] = None
    assert diff(golden, unclocked, "golden", "unclocked") != []

    print("corpus_diff self-test passed: timing masked; counts, energy, "
          "all three model columns and sequential telemetry bit-exact")
    return 0


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("golden", nargs="?", help="committed golden JSON")
    parser.add_argument("fresh", nargs="?", help="freshly generated JSON")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the masking and bit-exactness rules")
    args = parser.parse_args(argv[1:])

    if args.self_test:
        return self_test()
    if not args.golden or not args.fresh:
        parser.print_usage(sys.stderr)
        return 2

    with open(args.golden, encoding="utf-8") as handle:
        golden = json.load(handle)
    with open(args.fresh, encoding="utf-8") as handle:
        fresh = json.load(handle)
    lines = diff(golden, fresh, args.golden, args.fresh)
    if lines:
        for line in lines:
            print(line, file=sys.stderr)
        print("corpus golden gate FAILED; regenerate the golden with "
              "`cargo run --release --bin halotis-corpus -- --deterministic "
              f"--out {args.golden}` if the change is intended", file=sys.stderr)
        return 1
    print(f"corpus golden gate passed: {args.fresh} matches {args.golden} (timing masked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
