//! Offline stand-in for the `criterion` crate.
//!
//! The HALOTIS build environment has no access to crates.io, so this crate
//! vendors the subset of the criterion 0.5 API the workspace's five bench
//! targets use: [`Criterion::benchmark_group`], group configuration
//! (`sample_size`, `throughput`), [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::bench_function`], [`BenchmarkId`], [`Throughput`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is simple wall-clock sampling (median / mean / min over the
//! configured sample count, one warm-up pass, per-sample iteration counts
//! auto-scaled to ≈10 ms) printed to stdout — no plots, no statistics
//! machinery, no baseline files.  `cargo bench --no-run` and `cargo bench`
//! both work; if registry access ever becomes available the real crate is a
//! drop-in replacement for everything used here.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one measurement inside a group: a function name plus a
/// parameter rendering, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Builds an id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        if self.function.is_empty() {
            self.parameter.clone()
        } else if self.parameter.is_empty() {
            self.function.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: name.to_string(),
            parameter: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: name,
            parameter: String::new(),
        }
    }
}

/// Units of work per iteration, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Timing loop handed to bench closures, mirroring `criterion::Bencher`.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Measures `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and auto-scaling: aim for ~10 ms of work per sample so
        // fast routines are not measured at timer resolution.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(10);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// A named set of measurements, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed samples each measurement records.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples >= 2, "sample size must be at least 2");
        self.sample_size = samples;
        self
    }

    /// Declares the per-iteration work so results include a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures `routine` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, |bencher| routine(bencher, input));
        self
    }

    /// Measures a closure taking only the [`Bencher`].
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |bencher| routine(bencher));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut routine: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_count: self.sample_size,
        };
        routine(&mut bencher);
        let full_name = format!("{}/{}", self.name, id.label());
        self.criterion
            .report(&full_name, &mut bencher.samples, self.throughput);
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    fn report(&mut self, name: &str, samples: &mut [Duration], throughput: Option<Throughput>) {
        if samples.is_empty() {
            println!("{name:<56} no samples collected");
            return;
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!("  {:>12.0} elem/s", n as f64 / median.as_secs_f64())
            }
            Throughput::Bytes(n) => {
                format!("  {:>12.0} B/s", n as f64 / median.as_secs_f64())
            }
        });
        println!(
            "{name:<56} median {median:>12.3?}  mean {mean:>12.3?}  min {min:>12.3?}{}",
            rate.unwrap_or_default()
        );
    }
}

/// Bundles bench functions into one callable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub_smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn harness_runs_and_reports() {
        smoke();
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", "p").label(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(7).label(), "7");
        assert_eq!(BenchmarkId::from("name").label(), "name");
    }
}
