//! Offline stand-in for the `rand` crate.
//!
//! The HALOTIS build environment has no access to crates.io, so this tiny
//! vendored crate provides the subset of the rand 0.8 API the workspace
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is SplitMix64 — statistically fine for test fixtures and
//! benchmark workloads, deterministic across platforms, and *not* a
//! cryptographic RNG.  If registry access ever becomes available the real
//! `rand` crate is a drop-in replacement for everything used here.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core source of randomness: 64 fresh bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `RngCore` (the stand-in for
/// rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Constructible from a 64-bit seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }
}
