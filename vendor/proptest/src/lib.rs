//! Offline stand-in for the `proptest` crate.
//!
//! The HALOTIS build environment has no access to crates.io, so this crate
//! vendors the subset of the proptest 1.x API the workspace uses:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header) expanding `fn name(x in strategy, ..) { body }` test items,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//! * strategies for numeric ranges, [`collection::vec`], [`bool::ANY`],
//!   [`strategy::Just`], and [`arbitrary::any`].
//!
//! Semantics differ from real proptest in two deliberate ways: generation is
//! **deterministic** (seeded from the test name, so failures reproduce
//! exactly under `cargo test`) and there is **no shrinking** — the failing
//! case is reported by its case index instead.  Both are acceptable for a
//! CI gate; if registry access ever becomes available the real crate is a
//! drop-in replacement for everything used here.

#![forbid(unsafe_code)]

pub use rand::rngs::StdRng as TestRng;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Strategy trait: how to generate one value from the deterministic RNG.
pub mod strategy {
    use super::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Value` for the property-test runner.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy yielding a fixed value on every case.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    if start == end {
                        start
                    } else {
                        rng.gen_range(start..end)
                    }
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+ );)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
    }
}

pub use strategy::{Just, Strategy};

/// `any::<T>()` support, mirroring `proptest::arbitrary`.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::{Rng, Standard};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Standard> Arbitrary for T {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub use arbitrary::any;

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Strategy for a fair coin flip.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    /// Generates `true` and `false` with equal probability.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec()`].
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(*self.start()..*self.end() + 1)
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        length: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.length.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose length is drawn from `length` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, length: L) -> VecStrategy<S, L> {
        VecStrategy { element, length }
    }
}

/// Deterministic case runner used by the [`proptest!`] expansion.
pub mod runner {
    use super::{ProptestConfig, TestRng};
    use rand::SeedableRng;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Runs `config.cases` generated cases of the closure, reporting the
    /// failing case index before propagating its panic.
    pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng),
    {
        let mut hasher = DefaultHasher::new();
        name.hash(&mut hasher);
        let mut rng = TestRng::seed_from_u64(hasher.finish());
        for index in 0..config.cases {
            let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng)));
            if let Err(panic) = outcome {
                eprintln!(
                    "proptest stub: property `{name}` failed at case {index} \
                     (of {}); cases are deterministic per test name, so \
                     re-running reproduces this failure",
                    config.cases
                );
                resume_unwind(panic);
            }
        }
    }
}

/// Asserts a condition inside a property, mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property, mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property, mirroring `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Declares property tests: each `fn name(x in strategy, ..) { body }` item
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::runner::run_cases(stringify!($name), &config, |rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    $body
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3i64..17, f in 0.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.5).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn bool_any_and_just_work(b in crate::bool::ANY, j in Just(41usize)) {
            prop_assert!(usize::from(b) <= 1);
            prop_assert_eq!(j + 1, 42);
            prop_assert_ne!(j, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_arm_parses(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut a = crate::TestRng::seed_from_u64(9);
        let mut b = crate::TestRng::seed_from_u64(9);
        let s = 0.0f64..100.0;
        for _ in 0..16 {
            assert_eq!(s.generate(&mut a).to_bits(), s.generate(&mut b).to_bits());
        }
    }
}
